"""Common infrastructure shared by all kernel patterns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    ParamRef,
    UnaryOp,
)
from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    LeafNode,
    ScheduleNode,
)
from repro.poly.scop import Scop, ScopStatement


@dataclass
class KernelMatch:
    """Base class of pattern captures.

    ``update_stmt`` is the reduction statement computing the contraction;
    ``init_stmt`` the optional statement initialising / scaling the output
    (``C[i][j] = beta * C[i][j]`` or ``= 0``).  ``dims`` maps canonical
    dimension roles (``"i"``, ``"j"``, ``"k"`` …) to concrete loop-variable
    names, ``arrays`` maps operand roles (``"A"``, ``"B"``, ``"C"`` …) to
    concrete array names.  ``alpha``/``beta`` are IR expressions (parameter
    references or constants).
    """

    kind: str = "kernel"
    scop: Optional[Scop] = None
    update_stmt: str = ""
    init_stmt: Optional[str] = None
    dims: dict[str, str] = field(default_factory=dict)
    arrays: dict[str, str] = field(default_factory=dict)
    alpha: Expr = field(default_factory=lambda: FloatConst(1.0))
    beta: Expr = field(default_factory=lambda: FloatConst(0.0))
    trans_a: bool = False
    trans_b: bool = False

    @property
    def statements(self) -> set[str]:
        names = {self.update_stmt}
        if self.init_stmt is not None:
            names.add(self.init_stmt)
        return names

    # ------------------------------------------------------------------
    # Problem-size helpers
    # ------------------------------------------------------------------
    def extent_expr(self, role: str) -> Expr:
        """Symbolic extent (trip count) of the loop bound to dimension *role*."""
        assert self.scop is not None
        stmt = self.scop.statement(self.update_stmt)
        dim = stmt.domain.dim(self.dims[role])
        extent = dim.upper - dim.lower
        if dim.step != 1:
            raise ValueError("non-unit steps are not offloadable")
        return extent.to_ir()

    def extent(self, role: str, params: dict[str, int | float]) -> int:
        """Concrete extent of dimension *role* under a parameter binding."""
        assert self.scop is not None
        stmt = self.scop.statement(self.update_stmt)
        dim = stmt.domain.dim(self.dims[role])
        bindings = {k: int(v) for k, v in params.items() if isinstance(v, (int, float))}
        return dim.trip_count(bindings)

    def macs(self, params: dict[str, int | float]) -> int:
        """Multiply-accumulate count of the kernel under a parameter binding."""
        assert self.scop is not None
        stmt = self.scop.statement(self.update_stmt)
        return stmt.domain.cardinality(
            {k: int(v) for k, v in params.items() if isinstance(v, (int, float))}
        )

    # ------------------------------------------------------------------
    # Tree helpers
    # ------------------------------------------------------------------
    def leaf_node(self, tree: DomainNode) -> LeafNode:
        """The leaf scheduling the update statement."""
        for node in tree.walk():
            if isinstance(node, LeafNode) and self.update_stmt in node.statements:
                return node
        raise LookupError(
            f"schedule tree has no leaf for statement {self.update_stmt!r}"
        )

    def subtree_root(self, tree: DomainNode) -> ScheduleNode:
        """The highest node that schedules only this kernel's statements.

        This is the node device mapping will replace with runtime calls: the
        outermost ancestor (band/filter/mark) under which the set of active
        statements is a subset of this match's statements.
        """
        leaf = self.leaf_node(tree)
        candidate: ScheduleNode = leaf
        node: Optional[ScheduleNode] = leaf.parent
        while node is not None and not isinstance(node, DomainNode):
            if node.active_statements() <= self.statements:
                candidate = node
            else:
                break
            node = node.parent
        return candidate

    def band_chain(self, tree: DomainNode) -> list[BandNode]:
        """Bands enclosing the update statement, outermost first."""
        leaf = self.leaf_node(tree)
        bands = [n for n in leaf.ancestors() if isinstance(n, BandNode)]
        bands.reverse()
        return bands

    def __str__(self) -> str:
        dims = ", ".join(f"{k}={v}" for k, v in self.dims.items())
        arrays = ", ".join(f"{k}={v}" for k, v in self.arrays.items())
        return f"{self.kind}({arrays}; {dims}; stmt={self.update_stmt})"


# ----------------------------------------------------------------------
# Right-hand-side structural analysis shared by GEMM and GEMV detection
# ----------------------------------------------------------------------
def multiplicative_factors(expr: Expr) -> Optional[list[Expr]]:
    """Flatten a pure product into its factors.

    Returns ``None`` if the expression contains anything other than ``*``
    over array references, parameters and constants (no sums, no division).
    """
    if isinstance(expr, BinOp):
        if expr.op != "*":
            return None
        lhs = multiplicative_factors(expr.lhs)
        rhs = multiplicative_factors(expr.rhs)
        if lhs is None or rhs is None:
            return None
        return lhs + rhs
    if isinstance(expr, UnaryOp):
        inner = multiplicative_factors(expr.operand)
        if inner is None:
            return None
        return [UnaryOp("-", IntConst(1))] + inner
    if isinstance(expr, (ArrayRef, ParamRef, IntConst, FloatConst)):
        return [expr]
    return None


def split_product(
    expr: Expr,
) -> Optional[tuple[list[ArrayRef], list[Expr]]]:
    """Split a product into (array factors, scalar factors)."""
    factors = multiplicative_factors(expr)
    if factors is None:
        return None
    array_factors = [f for f in factors if isinstance(f, ArrayRef)]
    scalar_factors = [f for f in factors if not isinstance(f, ArrayRef)]
    return array_factors, scalar_factors


def scalar_product_expr(scalars: list[Expr]) -> Expr:
    """Combine scalar factors into one expression (1.0 when empty)."""
    if not scalars:
        return FloatConst(1.0)
    result = scalars[0]
    for factor in scalars[1:]:
        result = BinOp("*", result, factor)
    return result


def is_zero_constant(expr: Expr) -> bool:
    return (
        isinstance(expr, (IntConst, FloatConst)) and float(expr.value) == 0.0
    )


def find_init_statement(
    scop: Scop,
    update: ScopStatement,
    out_array: str,
    out_vars: tuple[str, ...],
) -> tuple[Optional[str], Expr]:
    """Look for the statement initialising the contraction output.

    Accepts ``out[...] = 0``, ``out[...] = beta * out[...]`` and
    ``out[...] *= beta`` where the subscripts equal the update statement's
    output subscripts.  Returns ``(statement name or None, beta expression)``
    — beta is 1.0 when no init statement exists (pure accumulation into the
    existing contents).
    """
    update_index = scop.statement_names.index(update.name)
    for stmt in reversed(scop.statements[:update_index]):
        writes = stmt.write_arrays()
        if out_array not in writes:
            # A different statement writing other arrays does not block the
            # search, but any statement writing the output array that is not
            # an init form stops it (the value would be clobbered).
            continue
        assign = stmt.assign
        if not isinstance(assign.target, ArrayRef):
            return None, FloatConst(1.0)
        target_vars = tuple(
            str(idx) for idx in assign.target.indices
        )
        expected_vars = tuple(out_vars)
        if target_vars != expected_vars:
            return None, FloatConst(1.0)
        if assign.reduction == "*":
            return stmt.name, assign.rhs
        if assign.reduction is not None:
            return None, FloatConst(1.0)
        rhs = assign.rhs
        if is_zero_constant(rhs):
            return stmt.name, FloatConst(0.0)
        split = split_product(rhs)
        if split is not None:
            array_factors, scalar_factors = split
            if (
                len(array_factors) == 1
                and array_factors[0].name == out_array
                and tuple(str(i) for i in array_factors[0].indices) == expected_vars
            ):
                return stmt.name, scalar_product_expr(scalar_factors)
        return None, FloatConst(1.0)
    return None, FloatConst(1.0)

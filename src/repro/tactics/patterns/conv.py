"""2D convolution pattern detection.

Recognises direct 2D convolution loop nests of the form::

    out[i][j] += W[p][q] * in[i + p][j + q];

(optionally with an ``alpha`` scalar factor and an init statement).  The
paper groups ``conv`` with the GEMM-like kernels: the runtime lowers the
convolution to GEMM via im2col, writes the (small) filter matrix to the
crossbar once, and streams image patches through the input buffers — which
is why its MACs-per-CIM-write intensity is high.

The subscripts ``i + p`` are affine but not "simple" single-variable
subscripts, so detection works directly on the affine access relations
instead of the placeholder matcher used for GEMM/GEMV.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import ArrayRef
from repro.poly.access import AccessKind, AccessRelation
from repro.poly.schedule_tree import DomainNode
from repro.poly.scop import Scop, ScopStatement
from repro.tactics.patterns.base import (
    KernelMatch,
    find_init_statement,
    scalar_product_expr,
    split_product,
)


class Conv2DMatch(KernelMatch):
    """Capture of a direct 2D convolution.

    Dimension roles: ``i``/``j`` (output rows/columns), ``p``/``q`` (filter
    rows/columns).  Array roles: ``out`` (output image), ``img`` (input
    image), ``W`` (filter weights).
    """

    def __init__(self, **kwargs):
        super().__init__(kind="conv2d", **kwargs)

    @property
    def out_h_expr(self):
        return self.extent_expr("i")

    @property
    def out_w_expr(self):
        return self.extent_expr("j")

    @property
    def filter_h_expr(self):
        return self.extent_expr("p")

    @property
    def filter_w_expr(self):
        return self.extent_expr("q")


def find_conv2d_kernels(scop: Scop, tree: DomainNode) -> list[Conv2DMatch]:
    matches: list[Conv2DMatch] = []
    for stmt in scop.statements:
        match = _match_conv_statement(scop, stmt)
        if match is not None:
            matches.append(match)
    return matches


def _single_var(access_dim) -> Optional[str]:
    """The unique loop variable of an affine subscript with coefficient 1."""
    coeffs = access_dim.vars
    if len(coeffs) != 1 or access_dim.params or access_dim.constant != 0:
        return None
    var, coeff = next(iter(coeffs.items()))
    return var if coeff == 1 else None


def _two_var_sum(access_dim) -> Optional[tuple[str, str]]:
    """Variables of a subscript of the form ``a + b`` (both coefficient 1)."""
    coeffs = access_dim.vars
    if len(coeffs) != 2 or access_dim.params:
        return None
    if any(c != 1 for c in coeffs.values()):
        return None
    vars_sorted = tuple(sorted(coeffs))
    return vars_sorted  # order resolved by the caller against output dims


def _match_conv_statement(scop: Scop, stmt: ScopStatement) -> Optional[Conv2DMatch]:
    assign = stmt.assign
    if assign.reduction != "+":
        return None
    if not isinstance(assign.target, ArrayRef) or assign.target.rank != 2:
        return None
    if stmt.domain.depth < 4:
        return None

    split = split_product(assign.rhs)
    if split is None:
        return None
    array_factors, scalar_factors = split
    if len(array_factors) != 2:
        return None

    writes = [a for a in stmt.accesses if a.kind is AccessKind.WRITE]
    reads = [a for a in stmt.accesses if a.kind is AccessKind.READ]
    if len(writes) != 1:
        return None
    write = writes[0]
    i_var = _single_var(write.indices[0])
    j_var = _single_var(write.indices[1])
    if i_var is None or j_var is None or i_var == j_var:
        return None
    out_array = write.array

    # Partition the reads: the reduction re-read of the output, the filter
    # (2D, indexed by two loop vars not in the write), and the image (2D,
    # indexed by sums i+p / j+q).
    filter_access: Optional[AccessRelation] = None
    image_access: Optional[AccessRelation] = None
    for access in reads:
        if access.array == out_array:
            continue
        if access.rank != 2:
            return None
        dim_vars = [_single_var(d) for d in access.indices]
        if all(v is not None for v in dim_vars):
            if filter_access is not None:
                return None
            filter_access = access
        else:
            if image_access is not None:
                return None
            image_access = access
    if filter_access is None or image_access is None:
        return None

    p_var = _single_var(filter_access.indices[0])
    q_var = _single_var(filter_access.indices[1])
    if p_var is None or q_var is None or p_var == q_var:
        return None
    if {p_var, q_var} & {i_var, j_var}:
        return None

    row_sum = _two_var_sum(image_access.indices[0])
    col_sum = _two_var_sum(image_access.indices[1])
    if row_sum is None or col_sum is None:
        return None
    if set(row_sum) != {i_var, p_var} or set(col_sum) != {j_var, q_var}:
        return None

    domain_vars = set(stmt.domain.var_names)
    if not {i_var, j_var, p_var, q_var} <= domain_vars:
        return None

    factor_names = sorted(ref.name for ref in array_factors)
    if factor_names != sorted([filter_access.array, image_access.array]):
        return None

    init_stmt, beta = find_init_statement(scop, stmt, out_array, (i_var, j_var))
    return Conv2DMatch(
        scop=scop,
        update_stmt=stmt.name,
        init_stmt=init_stmt,
        dims={"i": i_var, "j": j_var, "p": p_var, "q": q_var},
        arrays={
            "out": out_array,
            "img": image_access.array,
            "W": filter_access.array,
        },
        alpha=scalar_product_expr(scalar_factors),
        beta=beta,
    )

"""GEMM pattern detection.

Recognises generalised matrix-matrix multiplication updates of the form::

    C[i][j] += alpha * A[i][k] * B[k][j];      // any factor order,
                                               // transposed operands allowed

optionally preceded by an initialisation statement ``C[i][j] = beta * C[i][j]``
(or ``= 0`` / ``*= beta``).  Detection combines a structural check (the
update statement sits under a chain of bands covering at least the three
contraction dimensions) with access matching (the write is indexed by two
distinct variables, the reduction variable appears in both operand reads but
not in the write).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import ArrayRef, FloatConst
from repro.poly.access import AccessKind
from repro.poly.schedule_tree import DomainNode
from repro.poly.scop import Scop, ScopStatement
from repro.tactics.access import (
    dim_placeholders,
    array_placeholders,
    match_accesses,
    read_access,
    write_access,
)
from repro.tactics.patterns.base import (
    KernelMatch,
    find_init_statement,
    scalar_product_expr,
    split_product,
)


class GemmMatch(KernelMatch):
    """Capture of a GEMM kernel.

    Dimension roles: ``i`` (rows of C), ``j`` (columns of C), ``k``
    (contraction).  Array roles: ``C`` (output), ``A`` (left operand), ``B``
    (right operand).  ``trans_a`` is set when the left operand is accessed as
    ``A[k][i]``; ``trans_b`` when the right operand is accessed as
    ``B[j][k]``.
    """

    def __init__(self, **kwargs):
        super().__init__(kind="gemm", **kwargs)

    @property
    def m_expr(self):
        return self.extent_expr("i")

    @property
    def n_expr(self):
        return self.extent_expr("j")

    @property
    def k_expr(self):
        return self.extent_expr("k")


def find_gemm_kernels(scop: Scop, tree: DomainNode) -> list[GemmMatch]:
    """All GEMM kernels in *scop* (one match per update statement)."""
    matches: list[GemmMatch] = []
    for stmt in scop.statements:
        match = _match_gemm_statement(scop, stmt)
        if match is not None:
            matches.append(match)
    return matches


def _match_gemm_statement(scop: Scop, stmt: ScopStatement) -> Optional[GemmMatch]:
    assign = stmt.assign
    if assign.reduction != "+":
        return None
    if not isinstance(assign.target, ArrayRef) or assign.target.rank != 2:
        return None
    if stmt.domain.depth < 3:
        return None

    # Right-hand side must be a pure product of exactly two array reads plus
    # optional scalar factors (alpha).
    split = split_product(assign.rhs)
    if split is None:
        return None
    array_factors, scalar_factors = split
    if len(array_factors) != 2:
        return None

    # Access-level matching with placeholders: write C[i,j], read C[i,j]
    # (the reduction load), read A over {i,k}, read B over {k,j}.
    i_ph, j_ph, k_ph = dim_placeholders("i", "j", "k")
    c_ph, a_ph, b_ph = array_placeholders("C", "A", "B")
    variants = [
        # (A pattern subscripts, B pattern subscripts, trans_a, trans_b)
        ((i_ph, k_ph), (k_ph, j_ph), False, False),
        ((k_ph, i_ph), (k_ph, j_ph), True, False),
        ((i_ph, k_ph), (j_ph, k_ph), False, True),
        ((k_ph, i_ph), (j_ph, k_ph), True, True),
    ]
    for a_subs, b_subs, trans_a, trans_b in variants:
        patterns = [
            write_access(c_ph, (i_ph, j_ph)),
            read_access(c_ph, (i_ph, j_ph)),
            read_access(a_ph, a_subs),
            read_access(b_ph, b_subs),
        ]
        binding = match_accesses(stmt.accesses, patterns, distinct_dims=True)
        if binding is None:
            continue
        i_var, j_var, k_var = binding.dim("i"), binding.dim("j"), binding.dim("k")
        # The contraction variable must not index the output and must be a
        # domain dimension *inside* the output dimensions' loops or anywhere
        # in the nest — it only needs to exist in the domain.
        domain_vars = set(stmt.domain.var_names)
        if not {i_var, j_var, k_var} <= domain_vars:
            continue
        # Operands read from memory must match the two array factors of the
        # product (ensures the scalar factors really are alpha and nothing
        # references other arrays).
        factor_names = sorted(ref.name for ref in array_factors)
        operands = sorted([binding.array("A"), binding.array("B")])
        if factor_names != operands:
            continue
        out_array = binding.array("C")
        init_stmt, beta = find_init_statement(
            scop, stmt, out_array, (i_var, j_var)
        )
        return GemmMatch(
            scop=scop,
            update_stmt=stmt.name,
            init_stmt=init_stmt,
            dims={"i": i_var, "j": j_var, "k": k_var},
            arrays={
                "C": out_array,
                "A": binding.array("A"),
                "B": binding.array("B"),
            },
            alpha=scalar_product_expr(scalar_factors),
            beta=beta,
            trans_a=trans_a,
            trans_b=trans_b,
        )
    return None

"""GEMV pattern detection.

Recognises matrix-vector product updates of the form::

    y[i] += alpha * A[i][j] * x[j];     // or A[j][i] (transposed)

optionally preceded by an initialisation ``y[i] = beta * y[i]`` / ``= 0``.
These are the ``bicg``/``mvt``/``gesummv``-style kernels of the paper's
evaluation: offloadable, but with low MACs-per-CIM-write compute intensity.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import ArrayRef
from repro.poly.schedule_tree import DomainNode
from repro.poly.scop import Scop, ScopStatement
from repro.tactics.access import (
    array_placeholders,
    dim_placeholders,
    match_accesses,
    read_access,
    write_access,
)
from repro.tactics.patterns.base import (
    KernelMatch,
    find_init_statement,
    scalar_product_expr,
    split_product,
)


class GemvMatch(KernelMatch):
    """Capture of a GEMV kernel.

    Dimension roles: ``i`` (output rows), ``j`` (contraction).  Array roles:
    ``y`` (output vector), ``A`` (matrix), ``x`` (input vector).  ``trans_a``
    is set when the matrix is accessed as ``A[j][i]``.
    """

    def __init__(self, **kwargs):
        super().__init__(kind="gemv", **kwargs)

    @property
    def m_expr(self):
        return self.extent_expr("i")

    @property
    def n_expr(self):
        return self.extent_expr("j")


def find_gemv_kernels(scop: Scop, tree: DomainNode) -> list[GemvMatch]:
    """All GEMV kernels in *scop* (one match per update statement)."""
    matches: list[GemvMatch] = []
    for stmt in scop.statements:
        match = _match_gemv_statement(scop, stmt)
        if match is not None:
            matches.append(match)
    return matches


def _match_gemv_statement(scop: Scop, stmt: ScopStatement) -> Optional[GemvMatch]:
    assign = stmt.assign
    if assign.reduction != "+":
        return None
    if not isinstance(assign.target, ArrayRef) or assign.target.rank != 1:
        return None
    if stmt.domain.depth < 2:
        return None

    split = split_product(assign.rhs)
    if split is None:
        return None
    array_factors, scalar_factors = split
    if len(array_factors) != 2:
        return None

    i_ph, j_ph = dim_placeholders("i", "j")
    y_ph, a_ph, x_ph = array_placeholders("y", "A", "x")
    variants = [
        ((i_ph, j_ph), False),
        ((j_ph, i_ph), True),
    ]
    for a_subs, trans_a in variants:
        patterns = [
            write_access(y_ph, (i_ph,)),
            read_access(y_ph, (i_ph,)),
            read_access(a_ph, a_subs),
            read_access(x_ph, (j_ph,)),
        ]
        binding = match_accesses(stmt.accesses, patterns, distinct_dims=True)
        if binding is None:
            continue
        i_var, j_var = binding.dim("i"), binding.dim("j")
        if not {i_var, j_var} <= set(stmt.domain.var_names):
            continue
        factor_names = sorted(ref.name for ref in array_factors)
        operands = sorted([binding.array("A"), binding.array("x")])
        if factor_names != operands:
            continue
        out_array = binding.array("y")
        init_stmt, beta = find_init_statement(scop, stmt, out_array, (i_var,))
        return GemvMatch(
            scop=scop,
            update_stmt=stmt.name,
            init_stmt=init_stmt,
            dims={"i": i_var, "j": j_var},
            arrays={
                "y": out_array,
                "A": binding.array("A"),
                "x": binding.array("x"),
            },
            alpha=scalar_product_expr(scalar_factors),
            beta=beta,
            trans_a=trans_a,
        )
    return None

"""Pattern library: the computational kernels the CIM accelerator supports.

The accelerator executes matrix-vector products natively and matrix-matrix
products as a sequence of matrix-vector products (Section II-C of the
paper), so the patterns recognised here are:

* **GEMM** — ``C = alpha * op(A) * op(B) + beta * C`` contractions,
* **GEMV** — ``y = alpha * op(A) * x + beta * y`` contractions,
* **2D convolution** — lowered to GEMM on the device via im2col by the
  runtime library.

Each ``find_*`` function inspects a SCoP plus its schedule tree and returns
capture objects describing everything device mapping needs: the statements
involved, the loop dimensions and their extents, the operand arrays,
transpose flags, and scaling factors.
"""

from typing import TYPE_CHECKING

from repro.tactics.patterns.base import KernelMatch
from repro.tactics.patterns.gemm import GemmMatch, find_gemm_kernels
from repro.tactics.patterns.gemv import GemvMatch, find_gemv_kernels
from repro.tactics.patterns.conv import Conv2DMatch, find_conv2d_kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.poly.schedule_tree import DomainNode
    from repro.poly.scop import Scop


def find_all_kernels(scop: "Scop", tree: "DomainNode") -> list[KernelMatch]:
    """Run every pattern finder; GEMM matches shadow GEMV/conv on the same
    statements (a statement is claimed by at most one match)."""
    matches: list[KernelMatch] = []
    claimed: set[str] = set()
    for finder in (find_gemm_kernels, find_conv2d_kernels, find_gemv_kernels):
        for match in finder(scop, tree):
            if match.statements & claimed:
                continue
            claimed |= match.statements
            matches.append(match)
    return matches


__all__ = [
    "KernelMatch",
    "GemmMatch",
    "find_gemm_kernels",
    "GemvMatch",
    "find_gemv_kernels",
    "Conv2DMatch",
    "find_conv2d_kernels",
    "find_all_kernels",
]

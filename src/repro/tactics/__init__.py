"""Loop Tactics: declarative detection of computational patterns.

This package reproduces the role of Loop Tactics (Zinenko/Chelini et al.) in
the paper's flow: declarative *structural matchers* over schedule trees
combined with *access-relation matchers* with placeholders, and a pattern
library that recognises the kernels the CIM accelerator can execute (GEMM,
GEMV, batched GEMM, 2D convolution).

The matchers do not transform anything; they produce capture objects
(:class:`~repro.tactics.patterns.gemm.GemmMatch` etc.) that the
transformations in :mod:`repro.transforms` consume.
"""

from repro.tactics.matchers import (
    TreeMatcher,
    m_any,
    m_band,
    m_domain,
    m_filter,
    m_leaf,
    m_mark,
    m_sequence,
    match_tree,
)
from repro.tactics.access import (
    Placeholder,
    AccessPattern,
    match_accesses,
    read_access,
    write_access,
)
from repro.tactics.patterns import (
    GemmMatch,
    GemvMatch,
    Conv2DMatch,
    KernelMatch,
    find_gemm_kernels,
    find_gemv_kernels,
    find_conv2d_kernels,
    find_all_kernels,
)

__all__ = [
    "TreeMatcher",
    "m_any",
    "m_band",
    "m_domain",
    "m_filter",
    "m_leaf",
    "m_mark",
    "m_sequence",
    "match_tree",
    "Placeholder",
    "AccessPattern",
    "match_accesses",
    "read_access",
    "write_access",
    "GemmMatch",
    "GemvMatch",
    "Conv2DMatch",
    "KernelMatch",
    "find_gemm_kernels",
    "find_gemv_kernels",
    "find_conv2d_kernels",
    "find_all_kernels",
]

"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.driver.cma import CMAAllocator, CMAError
from repro.hw.crossbar import Crossbar, CrossbarConfig
from repro.hw.endurance import system_lifetime_years
from repro.poly.affine import AffineExpr
from repro.poly.domain import IterationDomain, LoopDim
from repro.tactics.access import (
    array_placeholders,
    dim_placeholders,
    match_accesses,
    read_access,
    write_access,
)

# ----------------------------------------------------------------------
# Affine expressions form a module over the integers
# ----------------------------------------------------------------------
coeff_dicts = st.dictionaries(
    st.sampled_from(["i", "j", "k", "l"]), st.integers(-8, 8), max_size=4
)
param_dicts = st.dictionaries(
    st.sampled_from(["N", "M", "K"]), st.integers(-8, 8), max_size=3
)
constants = st.integers(-100, 100)


@st.composite
def affine_exprs(draw):
    return AffineExpr.from_parts(draw(coeff_dicts), draw(param_dicts), draw(constants))


@given(affine_exprs(), affine_exprs())
def test_affine_addition_commutes(a, b):
    assert a + b == b + a


@given(affine_exprs(), affine_exprs(), affine_exprs())
def test_affine_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(affine_exprs(), st.integers(-5, 5))
def test_affine_scaling_distributes_over_addition(a, scalar):
    assert (a + a) * scalar == a * scalar + a * scalar


@given(affine_exprs())
def test_affine_subtraction_yields_zero(a):
    zero = a - a
    assert zero.is_constant and zero.constant == 0


@given(affine_exprs(), st.dictionaries(
    st.sampled_from(["i", "j", "k", "l", "N", "M", "K"]),
    st.integers(-50, 50),
    min_size=7,
))
def test_affine_evaluation_is_linear(a, bindings):
    assume(set(a.used_vars()) | set(a.used_params()) <= set(bindings))
    doubled = a * 2
    assert doubled.evaluate(bindings) == 2 * a.evaluate(bindings)


@given(affine_exprs())
def test_affine_to_ir_roundtrip(a):
    from repro.poly.affine import affine_from_expr

    back = affine_from_expr(a.to_ir(), {"i", "j", "k", "l"}, {"N", "M", "K"})
    assert back == a


# ----------------------------------------------------------------------
# Iteration-domain cardinality equals point enumeration
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 6), st.integers(1, 3)),
        min_size=1,
        max_size=3,
    )
)
def test_domain_cardinality_matches_enumeration(dims_spec):
    dims = []
    for index, (lower, extent, step) in enumerate(dims_spec):
        dims.append(
            LoopDim(
                f"v{index}",
                AffineExpr.constant_expr(lower),
                AffineExpr.constant_expr(lower + extent),
                step=step,
            )
        )
    domain = IterationDomain(tuple(dims))
    assert domain.cardinality({}) == len(list(domain.points({})))


# ----------------------------------------------------------------------
# CMA allocator never hands out overlapping or misaligned blocks
# ----------------------------------------------------------------------
@given(st.lists(st.integers(1, 4096), min_size=1, max_size=30))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_cma_blocks_are_disjoint_and_aligned(sizes):
    cma = CMAAllocator(base=0x1000, size=64 * 1024, alignment=64)
    blocks = []
    for size in sizes:
        try:
            blocks.append(cma.alloc(size))
        except CMAError:
            break
    intervals = sorted((b.address, b.address + b.size) for b in blocks)
    for (start_a, end_a), (start_b, _) in zip(intervals, intervals[1:]):
        assert end_a <= start_b
    for block in blocks:
        assert block.address % 64 == 0
        assert 0x1000 <= block.address and block.address + block.size <= 0x1000 + 64 * 1024
    assert cma.used_bytes == sum(b.size for b in blocks)


@given(st.lists(st.integers(1, 2048), min_size=1, max_size=20), st.randoms())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_cma_free_restores_capacity(sizes, rng):
    cma = CMAAllocator(base=0, size=128 * 1024, alignment=64)
    blocks = []
    for size in sizes:
        blocks.append(cma.alloc(size))
    rng.shuffle(blocks)
    for block in blocks:
        cma.free(block.address)
    assert cma.free_bytes == 128 * 1024
    assert cma.live_allocations == 0
    # After freeing everything a maximal allocation must succeed again.
    assert cma.alloc(128 * 1024).size == 128 * 1024


# ----------------------------------------------------------------------
# Crossbar GEMV: ideal mode is exact, quantized mode has bounded error
# ----------------------------------------------------------------------
@given(st.integers(2, 24), st.integers(2, 24), st.integers(0, 2 ** 32 - 1))
@settings(max_examples=25, deadline=None)
def test_ideal_crossbar_matches_numpy(rows, cols, seed):
    rng = np.random.default_rng(seed)
    xbar = Crossbar(CrossbarConfig(rows=rows, cols=cols, mode="ideal"))
    matrix = rng.standard_normal((rows, cols))
    xbar.write(matrix)
    x = rng.standard_normal(rows)
    result, _ = xbar.gemv(x)
    np.testing.assert_allclose(result, x @ matrix, rtol=1e-10, atol=1e-10)


@given(st.integers(4, 32), st.integers(4, 32), st.integers(0, 2 ** 32 - 1))
@settings(max_examples=20, deadline=None)
def test_quantized_crossbar_error_bound(rows, cols, seed):
    rng = np.random.default_rng(seed)
    xbar = Crossbar(CrossbarConfig(rows=rows, cols=cols, mode="quantized"))
    matrix = rng.random((rows, cols))
    xbar.write(matrix)
    x = rng.random(rows)
    result, _ = xbar.gemv(x)
    reference = x @ matrix
    scale = max(np.abs(reference).max(), 1e-9)
    assert np.abs(result - reference).max() / scale < 0.05


# ----------------------------------------------------------------------
# Multi-tile sharding: shard blocks exactly partition the operand
# ----------------------------------------------------------------------
@given(
    st.integers(1, 300),
    st.integers(1, 300),
    st.integers(1, 64),
    st.integers(1, 64),
)
@settings(max_examples=60, deadline=None)
def test_gemm_shard_plan_partitions_operand(m, k, cols, rows):
    from repro.hw.scheduler import plan_gemm_shards

    shards = plan_gemm_shards(m, k, cols=cols, rows=rows)
    covered = np.zeros((m, k), dtype=bool)
    for shard in shards:
        assert 0 < shard.i_size <= cols and 0 < shard.k_size <= rows
        block = covered[
            shard.i0 : shard.i0 + shard.i_size,
            shard.k0 : shard.k0 + shard.k_size,
        ]
        assert block.shape == (shard.i_size, shard.k_size)
        assert not block.any(), "shard blocks overlap"
        block[:] = True
    assert covered.all(), "shard blocks do not cover the operand"


@given(
    st.lists(
        st.tuples(
            st.floats(0, 1e-3), st.floats(0, 1e-3), st.floats(1e-6, 1e-2)
        ),
        min_size=1,
        max_size=24,
    ),
    st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_tile_scheduler_timeline_invariants(phase_specs, num_tiles):
    from repro.hw.scheduler import ShardWork, TileScheduler
    from repro.hw.timeline import Timeline

    shards = [
        ShardWork(dma_in_s=d, program_s=p, compute_s=c)
        for d, p, c in phase_specs
    ]
    scheduler = TileScheduler(num_tiles)
    timeline = Timeline()
    finish = scheduler.schedule(shards, timeline=timeline)
    serial = sum(s.dma_in_s + s.program_s + s.compute_s for s in shards)
    assert finish <= serial + 1e-12
    assert len(scheduler.placements) == len(shards)
    for placement in scheduler.placements:
        assert placement.compute_start_s >= placement.dma_end_s - 1e-12
        assert placement.compute_end_s <= finish + 1e-12
    # Per-lane compute never overlaps itself.
    per_tile = {}
    for placement in scheduler.placements:
        per_tile.setdefault(placement.tile, []).append(placement)
    for placements in per_tile.values():
        ordered = sorted(placements, key=lambda p: p.compute_start_s)
        for prev, cur in zip(ordered, ordered[1:]):
            assert cur.compute_start_s >= prev.compute_end_s - 1e-12


# ----------------------------------------------------------------------
# Endurance model: lifetime is monotone in its arguments
# ----------------------------------------------------------------------
@given(
    st.floats(1e5, 1e9),
    st.floats(1e3, 1e7),
    st.floats(1e2, 1e8),
    st.floats(1.01, 10.0),
)
def test_lifetime_monotonicity(endurance, size, traffic, factor):
    base = system_lifetime_years(endurance, size, traffic)
    assert system_lifetime_years(endurance * factor, size, traffic) > base
    assert system_lifetime_years(endurance, size * factor, traffic) > base
    assert system_lifetime_years(endurance, size, traffic * factor) < base


# ----------------------------------------------------------------------
# Access matching is permutation-invariant
# ----------------------------------------------------------------------
@given(st.permutations(range(4)))
def test_access_matching_order_invariant(order):
    from repro.frontend import parse_program
    from repro.ir.normalize import normalize_reductions
    from repro.poly import detect_scops
    from tests.conftest import GEMM_SOURCE

    program = normalize_reductions(parse_program(GEMM_SOURCE))
    scop = detect_scops(program)[0]
    update = scop.statements[1]
    accesses = [update.accesses[i] for i in order]
    i, j, k = dim_placeholders("i", "j", "k")
    a, b, c = array_placeholders("A", "B", "C")
    binding = match_accesses(
        accesses,
        [
            write_access(c, (i, j)),
            read_access(c, (i, j)),
            read_access(a, (i, k)),
            read_access(b, (k, j)),
        ],
    )
    assert binding is not None
    assert binding.dim("k") == "k"


# ----------------------------------------------------------------------
# End-to-end: random GEMM shapes offloaded through the compiler are exact
# ----------------------------------------------------------------------
@given(
    st.integers(1, 20),
    st.integers(1, 20),
    st.integers(1, 20),
    st.integers(0, 2 ** 16),
)
@settings(max_examples=15, deadline=None)
def test_offloaded_gemm_random_shapes(m, n, k, seed):
    from repro import OffloadExecutor, compile_source
    from tests.conftest import GEMM_SOURCE

    rng = np.random.default_rng(seed)
    result = compile_source(GEMM_SOURCE)
    params = {"M": m, "N": n, "K": k, "alpha": 1.5, "beta": 0.5}
    arrays = {
        "A": rng.random((m, k), dtype=np.float32),
        "B": rng.random((k, n), dtype=np.float32),
        "C": rng.random((m, n), dtype=np.float32),
    }
    outputs, _ = OffloadExecutor().run(result.program, params, arrays)
    reference = 1.5 * (arrays["A"].astype(np.float64) @ arrays["B"].astype(np.float64))
    reference += 0.5 * arrays["C"]
    np.testing.assert_allclose(outputs["C"], reference, rtol=1e-3, atol=1e-5)

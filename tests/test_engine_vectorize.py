"""Unit tests for the vectorized engine's analysis and edge cases."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.ir import ArrayDecl, Block, Interpreter, Loop, Program, VectorizedEngine
from repro.ir.engine.analysis import PlanAssign, PlanLoop, build_plan
from repro.ir.expr import ArrayRef, IntConst, Min, ParamRef, VarRef
from repro.ir.normalize import normalize_reductions
from repro.ir.program import ParamDecl
from repro.ir.stmt import Assign, CallStmt
from repro.ir.types import ElementType


def _both_engines(program, params, arrays):
    interp = Interpreter(program)
    out_i = interp.run(params, arrays)
    engine = VectorizedEngine(program)
    out_v = engine.run(params, arrays)
    return interp, out_i, engine, out_v


def _assert_identical(program, params, arrays):
    interp, out_i, engine, out_v = _both_engines(program, params, arrays)
    for name in out_i:
        np.testing.assert_array_equal(out_i[name], out_v[name])
    assert interp.trace == engine.trace
    return engine


# ----------------------------------------------------------------------
# Plan structure
# ----------------------------------------------------------------------
def test_gemm_plan_distributes_and_classifies(gemm_program):
    root = gemm_program.top_level_loops()[0]
    plan = build_plan(root)
    assert plan is not None
    # Maximal distribution: the init statement and the reduction separate
    # all the way to the top, and both i/j loops vectorize around them.
    assert len(plan.nodes) == 2
    i_init, i_update = plan.nodes
    assert isinstance(i_init, PlanLoop) and i_init.vec
    assert isinstance(i_update, PlanLoop) and i_update.vec
    (j_init,) = i_init.body
    assert isinstance(j_init, PlanLoop) and j_init.vec
    (init_stmt,) = j_init.body
    assert isinstance(init_stmt, PlanAssign)
    (j_update,) = i_update.body
    assert isinstance(j_update, PlanLoop) and j_update.vec
    (k_loop,) = j_update.body
    assert isinstance(k_loop, PlanLoop) and not k_loop.vec  # reduction axis
    assert k_loop.einsum is not None  # recognized contraction (fast mode)


def test_bicg_plan_splits_the_two_products():
    source = """
    void bicg(int N, int M, float A[N][M], float s[M], float q[N],
              float p[M], float r[N]) {
      for (int i = 0; i < N; i++) {
        q[i] = 0.0;
        for (int j = 0; j < M; j++) {
          s[j] = s[j] + r[i] * A[i][j];
          q[i] = q[i] + A[i][j] * p[j];
        }
      }
    }
    """
    program = parse_program(source)
    root = program.top_level_loops()[0]
    plan = build_plan(root)
    assert plan is not None
    # q-init distributes away from the j loop, and the j loop splits into
    # the s-update (j vectorized) and the q-update (i vectorized).
    assert len(plan.nodes) == 3
    init_i, s_i, q_i = plan.nodes
    assert init_i.vec  # for i: q[i] = 0 → one vector op
    assert not s_i.vec and s_i.body[0].vec  # s: i sequential, j vectorized
    assert q_i.vec and not q_i.body[0].vec  # q: i vectorized, j sequential


def test_call_statement_forces_fallback(gemm_program):
    root = gemm_program.top_level_loops()[0]
    root.body.stmts.append(CallStmt("mystery", []))
    assert build_plan(root) is None


def test_scalar_accumulator_forces_fallback():
    source = """
    void dot(int N, float A[N], float B[N], float out[1]) {
      for (int i = 0; i < N; i++)
        out[0] = out[0] + A[i] * B[i];
    }
    """
    program = parse_program(source)
    root = program.top_level_loops()[0]
    plan = build_plan(root)
    # out[0] carries no loop variable → i cannot vectorize → no plan.
    assert plan is None
    params = {"N": 37}
    arrays = {
        "A": np.linspace(0, 1, 37, dtype=np.float32),
        "B": np.linspace(1, 2, 37, dtype=np.float32),
        "out": np.zeros(1, dtype=np.float32),
    }
    _assert_identical(program, params, arrays)


def test_loop_carried_stencil_stays_sequential():
    source = """
    void scan(int N, float A[N]) {
      for (int i = 1; i < N; i++)
        A[i] = A[i - 1] + A[i];
    }
    """
    program = parse_program(source)
    assert build_plan(program.top_level_loops()[0]) is None
    arrays = {"A": np.arange(10, dtype=np.float32)}
    _assert_identical(program, {"N": 10}, arrays)


def test_independent_stencil_vectorizes():
    source = """
    void blur(int N, float A[N], float B[N]) {
      for (int i = 1; i < N - 1; i++)
        A[i] = B[i - 1] + B[i] + B[i + 1];
    }
    """
    program = parse_program(source)
    plan = build_plan(program.top_level_loops()[0])
    assert plan is not None and plan.nodes[0].vec
    rng = np.random.default_rng(0)
    arrays = {
        "A": np.zeros(33, dtype=np.float32),
        "B": rng.random(33, dtype=np.float32),
    }
    _assert_identical(program, {"N": 33}, arrays)


# ----------------------------------------------------------------------
# Edge-case semantics
# ----------------------------------------------------------------------
def test_triangular_nest_matches_interpreter():
    source = """
    void tri(int N, float C[N][N], float B[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = i; j < N; j++)
          C[i][j] = 2.0 * B[i][j];
    }
    """
    program = parse_program(source)
    plan = build_plan(program.top_level_loops()[0])
    # i is referenced by the j bounds → i sequential, j vectorized.
    assert plan is not None
    assert not plan.nodes[0].vec
    assert plan.nodes[0].body[0].vec
    rng = np.random.default_rng(1)
    n = 19
    arrays = {
        "C": np.zeros((n, n), dtype=np.float32),
        "B": rng.random((n, n), dtype=np.float32),
    }
    _assert_identical(program, {"N": n}, arrays)


def test_interleaved_groups_keep_program_order():
    """Regression: loop distribution must not hoist a statement above a
    same-iteration producer when an interleaved conflict group would
    otherwise be emitted first."""
    source = """
    void mix(int N, float T[N], float U[N], float X[N], float A[N]) {
      for (int i = 0; i < N; i++) {
        T[i] = U[i];
        X[i] = 7.0;
        A[i] = T[0] + X[i];
      }
    }
    """
    program = parse_program(source)
    arrays = {
        "T": np.zeros(4, dtype=np.float32),
        "U": np.arange(4, dtype=np.float32),
        "X": np.zeros(4, dtype=np.float32),
        "A": np.zeros(4, dtype=np.float32),
    }
    _, out_i, _, out_v = _both_engines(program, {"N": 4}, arrays)
    np.testing.assert_array_equal(out_i["A"], np.full(4, 7.0, dtype=np.float32))
    for name in out_i:
        np.testing.assert_array_equal(out_i[name], out_v[name])


def test_run_engine_typo_raises_before_resetting_stats(gemm_source, rng):
    """Regression: an invalid per-run engine must not wipe system stats."""
    from repro import OffloadExecutor, compile_source

    result = compile_source(gemm_source)
    params = {"M": 4, "N": 4, "K": 4, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((4, 4), dtype=np.float32),
        "B": rng.random((4, 4), dtype=np.float32),
        "C": np.zeros((4, 4), dtype=np.float32),
    }
    executor = OffloadExecutor()
    executor.run(result, params, arrays)
    runs_before = len(executor.system.accelerator.completed_runs)
    assert runs_before > 0
    with pytest.raises(ValueError):
        executor.run(result, params, arrays, engine="vectorised")
    assert len(executor.system.accelerator.completed_runs) == runs_before
    assert executor.last_engine_used == "fast"  # unchanged by the typo


def test_statement_beside_triangular_loop_counts_exactly():
    """Regression: an assignment directly inside an enumerated loop (one
    whose variable appears in deeper bounds) must be counted once per
    iteration, not once per loop entry."""
    source = """
    void mixed(int N, float A[N], float B[N][N]) {
      for (int i = 0; i < N; i++) {
        A[i] = 1.0;
        for (int j = 0; j < i; j++)
          B[i][j] = 2.0;
      }
    }
    """
    program = parse_program(source)
    arrays = {
        "A": np.zeros(6, dtype=np.float32),
        "B": np.zeros((6, 6), dtype=np.float32),
    }
    engine = _assert_identical(program, {"N": 6}, arrays)
    assert engine.nest_plan(program.top_level_loops()[0]) is not None
    assert engine.trace.statements_executed == 6 + 15  # A[i] + triangular B


def test_strided_loop_matches_interpreter():
    program = parse_program(
        """
        void strided(int N, float A[N]) {
          for (int i = 0; i < N; i++)
            A[i] = 1.0;
        }
        """
    )
    loop = program.top_level_loops()[0]
    loop.step = 3
    arrays = {"A": np.zeros(20, dtype=np.float32)}
    engine = _assert_identical(program, {"N": 20}, arrays)
    assert engine.nest_plan(loop) is not None


def test_min_bound_tiled_nest_matches_interpreter():
    """Hand-built tiled loop (min upper bounds, as emitted by tiling)."""
    n_param = ParamRef("N")
    body = Block(
        [
            Assign(
                ArrayRef("A", (VarRef("i"),)),
                ArrayRef("B", (VarRef("i"),)) * 3.0,
            )
        ]
    )
    inner = Loop("i", VarRef("it"), Min(VarRef("it") + 4, n_param), body)
    outer = Loop("it", IntConst(0), n_param, Block([inner]), step=4)
    program = Program(
        name="tiled_copy",
        params=[ParamDecl("N", ElementType.I32)],
        arrays=[
            ArrayDecl("A", ("N",), ElementType.F32),
            ArrayDecl("B", ("N",), ElementType.F32),
        ],
        body=Block([outer]),
    )
    rng = np.random.default_rng(2)
    arrays = {
        "A": np.zeros(23, dtype=np.float32),
        "B": rng.random(23, dtype=np.float32),
    }
    _assert_identical(program, {"N": 23}, arrays)


def test_empty_iteration_space_matches_interpreter(gemm_program):
    params = {"M": 0, "N": 4, "K": 4, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": np.zeros((0, 4), dtype=np.float32),
        "B": np.zeros((4, 4), dtype=np.float32),
        "C": np.zeros((0, 4), dtype=np.float32),
    }
    _assert_identical(gemm_program, params, arrays)


def test_float_valued_size_params_match_interpreter():
    """Regression: a float-valued size parameter mixed into a subscript
    must truncate like the interpreter's int() cast, not crash."""
    source = """
    void rev(int N, float A[N], float B[N]) {
      for (int i = 0; i < N; i++)
        A[N - 1 - i] = B[i];
    }
    """
    program = parse_program(source)
    rng = np.random.default_rng(6)
    arrays = {
        "A": np.zeros(8, dtype=np.float32),
        "B": rng.random(8, dtype=np.float32),
    }
    _assert_identical(program, {"N": 8.0}, arrays)  # note the float param


def test_integer_arrays_match_interpreter():
    source = """
    void ints(int N, int A[N][N], int B[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          A[i][j] = B[i][j] * 3 - i + j;
    }
    """
    program = parse_program(source)
    rng = np.random.default_rng(3)
    n = 9
    arrays = {
        "A": np.zeros((n, n), dtype=np.int32),
        "B": rng.integers(-50, 50, size=(n, n)).astype(np.int32),
    }
    _assert_identical(program, {"N": n}, arrays)


def test_normalized_reduction_matches_interpreter(gemm_source):
    program = normalize_reductions(parse_program(gemm_source))
    rng = np.random.default_rng(4)
    params = {"M": 13, "N": 11, "K": 17, "alpha": 1.5, "beta": 0.5}
    arrays = {
        "A": rng.random((13, 17), dtype=np.float32),
        "B": rng.random((17, 11), dtype=np.float32),
        "C": rng.random((13, 11), dtype=np.float32),
    }
    _assert_identical(program, params, arrays)


def test_executor_honours_compile_options_engine(gemm_source, rng):
    """Passing a CompilationResult to run() picks up options.engine."""
    from repro import CompileOptions, OffloadExecutor, compile_source

    result = compile_source(
        gemm_source, options=CompileOptions.host_only()
    )
    result.options.engine = "interpreter"
    params = {"M": 4, "N": 4, "K": 4, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((4, 4), dtype=np.float32),
        "B": rng.random((4, 4), dtype=np.float32),
        "C": np.zeros((4, 4), dtype=np.float32),
    }
    executor = OffloadExecutor()
    executor.run(result, params, arrays)
    assert executor.last_engine_used == "interpreter"
    # Explicit engine argument wins over the compiled options.
    executor.run(result, params, arrays, engine="vectorized")
    assert executor.last_engine_used == "vectorized"
    # A bare Program falls back to the executor's own default.
    executor.run(result.program, params, arrays)
    assert executor.last_engine_used == "fast"
    # An explicit constructor engine also wins over the compiled options.
    result.options.engine = "vectorized"
    pinned = OffloadExecutor(engine="interpreter")
    pinned.run(result, params, arrays)
    assert pinned.last_engine_used == "interpreter"


def test_fast_mode_broadcast_reduction_falls_back_to_exact():
    """A reduction whose rhs misses an output variable (broadcast over j)
    must not be einsum-lowered — regression for a fast-mode crash."""
    source = """
    void bcast(int N, float C[N][N], float A[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += 2.0 * A[i][k];
    }
    """
    program = normalize_reductions(parse_program(source))
    rng = np.random.default_rng(8)
    n = 7
    arrays = {
        "C": np.zeros((n, n), dtype=np.float32),
        "A": rng.random((n, n), dtype=np.float32),
    }
    ref = Interpreter(program).run({"N": n}, arrays)
    fast = VectorizedEngine(program, reassociate=True)
    out = fast.run({"N": n}, arrays)
    np.testing.assert_allclose(out["C"], ref["C"], rtol=1e-5)


def test_engine_modes_validation():
    from repro.ir import make_engine

    program = parse_program(
        "void f(int N, float A[N]) { for (int i = 0; i < N; i++) A[i] = 0.0; }"
    )
    with pytest.raises(ValueError):
        make_engine(program, engine="magic")
    from repro import CompileOptions

    with pytest.raises(ValueError):
        CompileOptions(engine="magic")
    from repro import OffloadExecutor

    with pytest.raises(ValueError):
        OffloadExecutor(engine="magic")

"""Tests for structural schedule-tree matchers and access matchers."""

import pytest

from repro.poly.access import AccessKind
from repro.poly.schedule_tree import BandNode, LeafNode
from repro.tactics import (
    m_any,
    m_band,
    m_domain,
    m_filter,
    m_leaf,
    m_sequence,
    match_tree,
)
from repro.tactics.access import (
    array_placeholders,
    dim_placeholders,
    match_accesses,
    read_access,
    write_access,
)
from repro.tactics.matchers import band_chain_matcher, find_matches, nested_band_chain


# ----------------------------------------------------------------------
# Structural matchers
# ----------------------------------------------------------------------
def test_match_canonical_gemm_shape(gemm_tree):
    matcher = m_domain(
        m_band(
            m_band(
                m_sequence(
                    m_filter(m_leaf(capture="init_leaf")),
                    m_filter(m_band(m_leaf(capture="update_leaf"), capture="band_k")),
                ),
                capture="band_j",
            ),
            capture="band_i",
        )
    )
    captures = match_tree(matcher, gemm_tree)
    assert captures is not None
    assert isinstance(captures["band_i"], BandNode)
    assert captures["band_i"].dims == ["i"]
    assert captures["band_k"].dims == ["k"]
    assert isinstance(captures["update_leaf"], LeafNode)


def test_match_fails_on_wrong_shape(gemm_tree):
    matcher = m_domain(m_band(m_leaf()))
    assert match_tree(matcher, gemm_tree) is None


def test_band_dimension_constraints(gemm_tree):
    band_i = gemm_tree.child
    assert match_tree(m_band(n_dims=1, dims=["i"]), band_i) is not None
    assert match_tree(m_band(dims=["j"]), band_i) is None
    assert match_tree(m_band(n_dims=2), band_i) is None


def test_wildcard_matches_anything(gemm_tree):
    for node in gemm_tree.walk():
        assert match_tree(m_any(), node) is not None


def test_filter_statement_constraint(gemm_tree, gemm_scop):
    init_name = gemm_scop.statements[0].name
    matches = find_matches(m_filter(statements={init_name}), gemm_tree)
    assert len(matches) == 1


def test_find_matches_counts_bands(gemm_tree):
    assert len(find_matches(m_band(), gemm_tree)) == 3


def test_band_chain_matcher(gemm_tree):
    captures = match_tree(band_chain_matcher(2), gemm_tree.child)
    assert captures is not None
    assert captures["band0"].dims == ["i"]
    assert captures["band1"].dims == ["j"]


def test_nested_band_chain_stops_at_sequence(gemm_tree):
    chain = nested_band_chain(gemm_tree.child)
    assert [b.dims[0] for b in chain] == ["i", "j"]


# ----------------------------------------------------------------------
# Access matchers
# ----------------------------------------------------------------------
def test_access_match_gemm_update(gemm_scop):
    update = gemm_scop.statements[1]
    i, j, k = dim_placeholders("i", "j", "k")
    a, b, c = array_placeholders("A", "B", "C")
    binding = match_accesses(
        update.accesses,
        [
            write_access(c, (i, j)),
            read_access(c, (i, j)),
            read_access(a, (i, k)),
            read_access(b, (k, j)),
        ],
    )
    assert binding is not None
    assert binding.array("C") == "C" and binding.array("A") == "A"
    assert binding.dim("i") == "i" and binding.dim("k") == "k"


def test_access_match_rejects_wrong_orientation(gemm_scop):
    update = gemm_scop.statements[1]
    i, j, k = dim_placeholders("i", "j", "k")
    a, b, c = array_placeholders("A", "B", "C")
    binding = match_accesses(
        update.accesses,
        [
            write_access(c, (i, j)),
            read_access(c, (i, j)),
            read_access(a, (k, i)),   # transposed A: should not unify
            read_access(b, (k, j)),
        ],
    )
    assert binding is None


def test_access_match_requires_all_accesses_consumed(gemm_scop):
    update = gemm_scop.statements[1]
    i, j = dim_placeholders("i", "j")
    c = array_placeholders("C")[0]
    binding = match_accesses(update.accesses, [write_access(c, (i, j))])
    assert binding is None
    binding = match_accesses(
        update.accesses, [write_access(c, (i, j))], allow_extra=True
    )
    assert binding is not None


def test_distinct_dims_constraint():
    from repro.poly.access import AccessRelation
    from repro.poly.affine import AffineExpr

    accesses = [
        AccessRelation("X", AccessKind.WRITE, (AffineExpr.var("i"), AffineExpr.var("i"))),
    ]
    i, j = dim_placeholders("i", "j")
    x = array_placeholders("X")[0]
    assert match_accesses(accesses, [write_access(x, (i, j))]) is None
    assert (
        match_accesses(accesses, [write_access(x, (i, j))], distinct_dims=False)
        is not None
    )

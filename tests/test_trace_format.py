"""Trace format hardening (PR 7 satellite).

A trace that is not exactly right — unknown schema version, truncated or
corrupt JSONL, tampered payloads, spliced files — is rejected whole with
a typed :class:`TraceFormatError` before any replay state exists,
mirroring the compile cache's corrupt-pickle quarantine semantics: no
partial replay, ever.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.trace import (
    SCHEMA_VERSION,
    Trace,
    TraceFormatError,
    TraceReplayer,
    decode_array,
    encode_array,
    load_trace,
    loads_trace,
)
from repro.trace.scenarios import record_serve_multitenant


@pytest.fixture(scope="module")
def trace() -> Trace:
    return record_serve_multitenant()


@pytest.fixture(scope="module")
def lines(trace) -> list[str]:
    return trace.dumps().splitlines()


def _mutate_header(lines, **changes) -> str:
    header = json.loads(lines[0])
    header.update(changes)
    return "\n".join([json.dumps(header)] + lines[1:])


# ----------------------------------------------------------------------
# Schema versioning
# ----------------------------------------------------------------------
def test_unknown_schema_version_rejected(lines):
    with pytest.raises(TraceFormatError, match="unsupported schema_version 99"):
        loads_trace(_mutate_header(lines, schema_version=99))


def test_future_minor_version_is_still_rejected(lines):
    """No 'best effort' reading of newer traces: version checks are
    exact, so format evolution is always explicit."""
    with pytest.raises(TraceFormatError, match="unsupported schema_version"):
        loads_trace(_mutate_header(lines, schema_version=SCHEMA_VERSION + 1))


def test_missing_or_non_integer_version_rejected(lines):
    header = json.loads(lines[0])
    del header["schema_version"]
    with pytest.raises(TraceFormatError, match="schema_version missing"):
        loads_trace("\n".join([json.dumps(header)] + lines[1:]))
    with pytest.raises(TraceFormatError, match="schema_version missing"):
        loads_trace(_mutate_header(lines, schema_version="1"))


def test_unknown_kind_rejected(lines):
    with pytest.raises(TraceFormatError, match="kind"):
        loads_trace(_mutate_header(lines, kind="cluster"))


# ----------------------------------------------------------------------
# Truncation and corruption
# ----------------------------------------------------------------------
def test_truncated_trace_rejected(lines):
    # Dropping the footer == an interrupted recording.
    with pytest.raises(TraceFormatError, match="truncated"):
        loads_trace("\n".join(lines[:-1]))


def test_spliced_trace_rejected(lines):
    # Footer present but events missing: the declared count catches it.
    with pytest.raises(TraceFormatError, match="truncated or spliced"):
        loads_trace("\n".join(lines[:3] + [lines[-1]]))


def test_concatenated_traces_rejected(lines):
    with pytest.raises(TraceFormatError, match="truncated|interior"):
        loads_trace("\n".join(lines + lines))


def test_corrupt_jsonl_line_rejected(lines):
    corrupt = lines[:2] + [lines[2][: len(lines[2]) // 2]] + lines[3:]
    with pytest.raises(TraceFormatError, match="corrupt JSONL line"):
        loads_trace("\n".join(corrupt))


def test_blank_line_rejected(lines):
    with pytest.raises(TraceFormatError, match="blank line"):
        loads_trace("\n".join(lines[:2] + [""] + lines[2:]))


def test_non_object_line_rejected(lines):
    with pytest.raises(TraceFormatError, match="expected a JSON object"):
        loads_trace("\n".join(lines[:2] + ["[1,2,3]"] + lines[2:]))


def test_unknown_event_kind_rejected(lines):
    with pytest.raises(TraceFormatError, match="unknown event kind"):
        loads_trace("\n".join(lines[:2] + ['{"event":"telemetry"}'] + lines[2:]))


def test_empty_trace_rejected():
    with pytest.raises(TraceFormatError, match="empty trace"):
        loads_trace("")


def test_headerless_trace_rejected(lines):
    with pytest.raises(TraceFormatError, match="must start with a header"):
        loads_trace("\n".join(lines[1:]))


# ----------------------------------------------------------------------
# Payload integrity
# ----------------------------------------------------------------------
def _tamper_first_submit(lines, mutate) -> str:
    out = []
    tampered = False
    for line in lines:
        event = json.loads(line)
        if not tampered and event["event"] == "submit":
            mutate(event)
            tampered = True
        out.append(json.dumps(event))
    assert tampered
    return "\n".join(out)


def test_tampered_payload_bytes_rejected(lines):
    def flip_bytes(event):
        name = next(iter(event["arrays"]))
        payload = event["arrays"][name]
        fresh = encode_array(np.ones((2, 2), dtype=np.float32))
        payload["data"] = fresh["data"]  # bytes no longer match the hash

    with pytest.raises(TraceFormatError, match="do not match|require"):
        loads_trace(_tamper_first_submit(lines, flip_bytes))


def test_wrong_byte_count_rejected(lines):
    def shrink_shape(event):
        name = next(iter(event["arrays"]))
        event["arrays"][name]["shape"] = [2, 2]

    with pytest.raises(TraceFormatError, match="require"):
        loads_trace(_tamper_first_submit(lines, shrink_shape))


def test_invalid_base64_rejected(lines):
    def garble(event):
        name = next(iter(event["arrays"]))
        event["arrays"][name]["data"] = "!!not-base64!!"

    with pytest.raises(TraceFormatError, match="malformed array payload"):
        loads_trace(_tamper_first_submit(lines, garble))


def test_submit_missing_required_key_rejected(lines):
    def drop_source(event):
        del event["source"]

    with pytest.raises(TraceFormatError, match="missing 'source'"):
        loads_trace(_tamper_first_submit(lines, drop_source))


def test_array_roundtrip_is_exact():
    rng = np.random.default_rng(5)
    for array in (
        rng.random((7, 3)),
        rng.integers(-100, 100, size=11),
        rng.random(4).astype(np.float32),
        np.zeros(0, dtype=np.float64),
    ):
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert decoded.tobytes() == array.tobytes()


# ----------------------------------------------------------------------
# No partial replay
# ----------------------------------------------------------------------
def test_load_trace_file_errors_are_typed(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot read trace"):
        load_trace(tmp_path / "missing.jsonl")


def test_corrupt_file_never_reaches_the_replayer(tmp_path, trace):
    """The loader is the only gate: a corrupt file raises before a
    server, a clock or any replay state is constructed."""
    path = tmp_path / "t.jsonl"
    text = trace.dumps()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_bad_config_rejected_at_build_server(trace):
    events = [json.loads(line) for line in trace.dumps().splitlines()]
    events[0]["config"]["warp_drive"] = True
    with pytest.raises(TraceFormatError, match="does not rebuild"):
        TraceReplayer(Trace(events=events)).build_server()


# ----------------------------------------------------------------------
# Schema v2: payload deduplication (PR 8 satellite)
# ----------------------------------------------------------------------
def _array_payloads(raw_events):
    for event in raw_events:
        for key in ("arrays", "result"):
            payloads = event.get(key)
            if isinstance(payloads, dict):
                yield from payloads.values()


def test_v2_recording_dedups_repeated_payloads(trace, lines):
    """The canonical serving scenario submits identical arrays many
    times; at schema v2 each distinct content hash is stored in full
    exactly once and every repeat is a byte-free reference."""
    assert trace.schema_version == SCHEMA_VERSION == 2
    raw = [json.loads(line) for line in lines]
    full, refs = {}, 0
    for payload in _array_payloads(raw):
        if "data" in payload:
            full[payload["sha256"]] = full.get(payload["sha256"], 0) + 1
        else:
            refs += 1
    assert refs > 0, "scenario should contain repeated payloads"
    assert full, "first occurrence of each hash keeps its bytes"
    assert all(count == 1 for count in full.values())


def test_v2_semantic_views_rehydrate(trace):
    """submissions()/responses() always hand back full payloads — the
    dedup is invisible above the storage layer."""
    for submit in trace.submissions():
        for payload in submit["arrays"].values():
            assert "data" in payload
            decode_array(payload)  # bytes still match their hash


def test_v2_roundtrip_preserves_dedup_and_content(trace):
    reloaded = loads_trace(trace.dumps())
    assert reloaded.dumps() == trace.dumps()
    originals = {s["request_id"]: s for s in trace.submissions()}
    for submit in reloaded.submissions():
        reference = originals[submit["request_id"]]
        for name, payload in submit["arrays"].items():
            assert (
                decode_array(payload).tobytes()
                == decode_array(reference["arrays"][name]).tobytes()
            )


def test_v2_dangling_reference_rejected(lines):
    """A reference must resolve against an *earlier* full payload."""

    def orphan(event):
        name = next(iter(event["arrays"]))
        payload = event["arrays"][name]
        event["arrays"][name] = {
            "dtype": payload["dtype"],
            "shape": payload["shape"],
            "sha256": "0" * 64,
        }

    with pytest.raises(TraceFormatError, match="unknown sha256"):
        loads_trace(_tamper_first_submit(lines, orphan))


def test_v1_trace_must_carry_full_payloads(lines):
    """Back-compat contract: a v1 trace with a v2-style reference is
    rejected — v1 records every payload in full."""

    def make_ref(event):
        name = next(iter(event["arrays"]))
        del event["arrays"][name]["data"]

    tampered = _tamper_first_submit(lines, make_ref)
    downgraded = _mutate_header(tampered.splitlines(), schema_version=1)
    with pytest.raises(TraceFormatError, match="schema v1 records"):
        loads_trace(downgraded)


def test_recorder_rejects_unsupported_version():
    from repro.trace.recorder import TraceRecorder

    with pytest.raises(TraceFormatError, match="cannot record schema_version"):
        TraceRecorder(schema_version=7)


def test_v2_trace_is_smaller_than_hydrated_equivalent(trace):
    """Dedup is the point: the stored (deduplicated) event stream is
    materially smaller than the same events with every payload in full."""
    stored = json.dumps(trace.events)
    hydrated = json.dumps([trace.events[0], *trace.body(), trace.events[-1]])
    assert len(stored) < 0.75 * len(hydrated)

"""Unit tests for IR expressions."""

import pytest

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
    array_refs,
    const_value,
)


def test_operator_sugar_builds_binops():
    i = VarRef("i")
    expr = i + 1
    assert isinstance(expr, BinOp)
    assert expr.op == "+"
    assert expr.rhs == IntConst(1)


def test_reverse_operators():
    i = VarRef("i")
    expr = 2 * i
    assert isinstance(expr, BinOp)
    assert expr.op == "*"
    assert expr.lhs == IntConst(2)


def test_negation():
    expr = -VarRef("k")
    assert isinstance(expr, UnaryOp)
    assert expr.op == "-"


def test_free_vars_collects_variables_and_params():
    expr = BinOp("+", VarRef("i"), BinOp("*", ParamRef("N"), VarRef("j")))
    assert expr.free_vars() == {"i", "j", "N"}


def test_array_ref_wraps_integer_indices():
    ref = ArrayRef("A", [VarRef("i"), 3])
    assert ref.indices[1] == IntConst(3)
    assert ref.rank == 2


def test_array_refs_helper_finds_nested_accesses():
    expr = BinOp("*", ArrayRef("A", [VarRef("i")]), ArrayRef("B", [VarRef("j")]))
    names = [ref.name for ref in array_refs(expr)]
    assert names == ["A", "B"]


def test_walk_is_preorder():
    expr = BinOp("+", IntConst(1), IntConst(2))
    nodes = list(expr.walk())
    assert nodes[0] is expr
    assert len(nodes) == 3


def test_const_value():
    assert const_value(IntConst(7)) == 7
    assert const_value(FloatConst(2.5)) == 2.5
    assert const_value(VarRef("x")) is None


def test_invalid_binop_operator_rejected():
    with pytest.raises(ValueError):
        BinOp("**", IntConst(1), IntConst(2))


def test_invalid_unary_operator_rejected():
    with pytest.raises(ValueError):
        UnaryOp("!", IntConst(1))


def test_boolean_not_allowed_as_constant():
    with pytest.raises(TypeError):
        VarRef("i") + True


def test_min_max_str_and_children():
    expr = Min(VarRef("a"), Max(VarRef("b"), IntConst(4)))
    assert "min" in str(expr) and "max" in str(expr)
    assert expr.free_vars() == {"a", "b"}


def test_str_rendering_of_array_access():
    ref = ArrayRef("C", [VarRef("i"), VarRef("j")])
    assert str(ref) == "C[i][j]"

"""Tests for the mini-C lexer and parser."""

import pytest

from repro.frontend import FrontendError, TokenKind, parse_program, tokenize
from repro.ir.expr import ArrayRef, BinOp, ParamRef
from repro.ir.stmt import Loop


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def test_tokenize_basic_kinds():
    tokens = tokenize("for (int i = 0; i < 10; i++) x[i] += 2.5f;")
    kinds = [t.kind for t in tokens]
    assert TokenKind.KEYWORD in kinds
    assert TokenKind.IDENT in kinds
    assert TokenKind.INT in kinds
    assert TokenKind.FLOAT in kinds
    assert kinds[-1] is TokenKind.EOF


def test_tokenize_skips_comments():
    tokens = tokenize("// comment\n/* block\ncomment */ x")
    texts = [t.text for t in tokens if t.kind is not TokenKind.EOF]
    assert texts == ["x"]


def test_tokenize_tracks_line_numbers():
    tokens = tokenize("a\nb\nc")
    lines = [t.line for t in tokens if t.kind is TokenKind.IDENT]
    assert lines == [1, 2, 3]


def test_tokenize_rejects_unknown_character():
    with pytest.raises(FrontendError):
        tokenize("a @ b")


def test_multi_char_punctuators_lexed_greedily():
    tokens = tokenize("a += b ++ <=")
    texts = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
    assert texts == ["+=", "++", "<="]


# ----------------------------------------------------------------------
# Parser: acceptance
# ----------------------------------------------------------------------
def test_parse_gemm(gemm_source):
    program = parse_program(gemm_source)
    assert program.name == "gemm"
    assert program.param_names == ["M", "N", "K", "alpha", "beta"]
    assert program.array_names == ["C", "A", "B"]
    assert len(program.statements()) == 2


def test_parse_symbolic_array_dimensions(conv_source):
    program = parse_program(conv_source)
    img = program.array("img")
    assert img.rank == 2
    assert img.extent({"OH": 4, "OW": 5, "KH": 3, "KW": 3}) == (6, 7)


def test_parse_le_condition_becomes_exclusive_bound():
    source = """
    void f(int N, float A[N + 1]) {
      for (int i = 0; i <= N; i++)
        A[i] = 0.0;
    }
    """
    program = parse_program(source)
    loop = program.top_level_loops()[0]
    assert "+ 1" in str(loop.upper)


def test_parse_step_increment():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i += 2)
        A[i] = 0.0;
    }
    """
    loop = parse_program(source).top_level_loops()[0]
    assert loop.step == 2


def test_parse_compound_assignment_kinds():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i++) {
        A[i] += 1.0;
        A[i] *= 2.0;
      }
    }
    """
    stmts = parse_program(source).statements()
    assert [s.reduction for s in stmts] == ["+", "*"]


def test_parse_cast_is_ignored():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i++)
        A[i] = (float) i;
    }
    """
    program = parse_program(source)
    assert len(program.statements()) == 1


# ----------------------------------------------------------------------
# Parser: diagnostics
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "source, fragment",
    [
        ("void f(float *A) { }", "pointer"),
        ("void f(int N, float A[N]) { A[0] = B[0]; }", "undeclared"),
        ("void f(int N, float A[N][N]) { A[0] = 1.0; }", "rank"),
        ("void f(int N) { N = 3; }", "parameter"),
        ("void f(int N, float A[N]) { for (int N = 0; N < 4; N++) A[N] = 0.0; }",
         "shadows"),
        ("void f(int N, float A[N]) { for (int i = 0; j < N; i++) A[i] = 0.0; }",
         "induction"),
        ("void f(int N, float A[N]) { for (int i = 0; i < N; i += k) A[i] = 0.0; }",
         "integer constant"),
    ],
)
def test_parse_errors(source, fragment):
    with pytest.raises(FrontendError) as err:
        parse_program(source)
    assert fragment in str(err.value)


def test_error_reports_location():
    source = "void f(int N,\n float A[N]) {\n  A[0] = ;\n}"
    with pytest.raises(FrontendError) as err:
        parse_program(source)
    assert err.value.line == 3


def test_two_functions_rejected():
    source = "void f(int N) { } void g(int N) { }"
    with pytest.raises(FrontendError):
        parse_program(source)

"""Tests for reduction canonicalisation."""

import numpy as np

from repro.frontend import parse_program
from repro.ir import Interpreter
from repro.ir.normalize import normalize_reductions


MVT_LIKE = """
void f(int N, float x[N], float A[N][N], float y[N]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x[i] = x[i] + A[i][j] * y[j];
}
"""


def test_plus_form_becomes_reduction():
    program = normalize_reductions(parse_program(MVT_LIKE))
    stmts = program.statements()
    assert len(stmts) == 1
    assert stmts[0].reduction == "+"


def test_commuted_plus_form_becomes_reduction():
    source = MVT_LIKE.replace("x[i] + A[i][j] * y[j]", "A[i][j] * y[j] + x[i]")
    program = normalize_reductions(parse_program(source))
    assert program.statements()[0].reduction == "+"


def test_mul_form_becomes_reduction():
    source = """
    void f(int N, float beta, float D[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          D[i][j] = D[i][j] * beta;
    }
    """
    program = normalize_reductions(parse_program(source))
    assert program.statements()[0].reduction == "*"


def test_non_reduction_assignments_untouched():
    source = """
    void f(int N, float A[N], float B[N]) {
      for (int i = 0; i < N; i++)
        A[i] = B[i] + 1.0;
    }
    """
    program = normalize_reductions(parse_program(source))
    assert program.statements()[0].reduction is None


def test_different_subscripts_not_converted():
    source = """
    void f(int N, float A[N]) {
      for (int i = 1; i < N; i++)
        A[i] = A[i - 1] + 1.0;
    }
    """
    program = normalize_reductions(parse_program(source))
    assert program.statements()[0].reduction is None


def test_normalisation_preserves_semantics(rng):
    program = parse_program(MVT_LIKE)
    normalised = normalize_reductions(program)
    params = {"N": 5}
    arrays = {
        "x": rng.random(5, dtype=np.float32),
        "A": rng.random((5, 5), dtype=np.float32),
        "y": rng.random(5, dtype=np.float32),
    }
    out1 = Interpreter(program).run(params, arrays)
    out2 = Interpreter(normalised).run(params, arrays)
    np.testing.assert_allclose(out1["x"], out2["x"], rtol=1e-6)

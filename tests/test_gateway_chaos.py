"""Tests for the seeded chaos harness (PR 10).

A real (small) storm through real worker processes, plus the pure
scheduling pieces.  The CI ``gateway-chaos`` job runs the ≥1k-request
storm through ``repro gateway chaos``; here the counts stay small.
"""

from __future__ import annotations

import pytest

from repro.gateway.chaos import (
    ChaosSpec,
    chaos_schedule,
    chaos_workload,
    run_chaos,
)


class TestSchedule:
    def test_schedule_is_deterministic_in_the_seed(self):
        spec = ChaosSpec(num_requests=200, seed=42)
        assert chaos_schedule(spec) == chaos_schedule(spec)
        assert chaos_schedule(spec) != chaos_schedule(
            ChaosSpec(num_requests=200, seed=43)
        )

    def test_schedule_respects_rates(self):
        spec = ChaosSpec(
            num_requests=500,
            seed=1,
            hang_rate=0.0,
            crash_rate=0.0,
            corrupt_rate=0.0,
            slow_rate=0.0,
            deadline_rate=1.0,
        )
        schedule = chaos_schedule(spec)
        assert all(fault is None for fault, _ in schedule)
        assert all(deadline is not None for _, deadline in schedule)

    def test_workload_decorates_the_gemv_bank(self):
        spec = ChaosSpec(
            num_requests=50,
            seed=2,
            crash_rate=1.0,
            hang_rate=0.0,
            corrupt_rate=0.0,
            slow_rate=0.0,
        )
        workload = chaos_workload(spec)
        item = workload(0)
        assert item.fault in ("die-before-dispatch", "die-mid-request")
        assert item.tenant.startswith("tenant-")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="num_requests"):
            ChaosSpec(num_requests=0)
        with pytest.raises(ValueError, match="rates"):
            ChaosSpec(crash_rate=0.9, slow_rate=0.9)


class TestStorm:
    def test_small_storm_upholds_every_invariant(self):
        """The PR's acceptance shape in miniature: hangs, both crash
        points, corrupt frames, slow workers and deadline pressure, with
        respawn and a hot spare enabled — all four invariants must hold."""
        spec = ChaosSpec(
            num_requests=120,
            rate_rps=150.0,
            seed=7,
            num_workers=2,
            hot_spares=1,
            max_respawns=8,
            hang_timeout_s=0.3,
            hang_rate=0.02,
            crash_rate=0.04,
            corrupt_rate=0.02,
            slow_rate=0.02,
            deadline_rate=0.08,
        )
        report = run_chaos(spec)
        assert report.ok, report.violations
        assert report.invariants == {
            "zero_lost": True,
            "partition_exact": True,
            "exactly_once_billing": True,
            "bit_identical_results": True,
        }
        # The storm actually stormed and the pool actually healed.
        assert sum(report.planned_faults.values()) > 0
        resilience = report.load.snapshot.get("resilience", {})
        assert resilience.get("respawns", 0) > 0
        assert report.load.served_fraction == 1.0

    def test_fault_free_storm_is_quiet(self):
        """With every rate at zero the resilience layer (armed watchdog,
        respawn budget, spare) must change nothing: all completed, no
        resilience counter fires."""
        spec = ChaosSpec(
            num_requests=30,
            rate_rps=200.0,
            seed=9,
            num_workers=2,
            hot_spares=1,
            max_respawns=4,
            # Armed but generous: a tight watchdog can misread a slow
            # first-request compile on a loaded machine as a hang, and
            # this test asserts that *no* resilience counter fires.
            hang_timeout_s=10.0,
            hang_rate=0.0,
            crash_rate=0.0,
            corrupt_rate=0.0,
            slow_rate=0.0,
            deadline_rate=0.0,
        )
        report = run_chaos(spec)
        assert report.ok, report.violations
        assert report.load.completed == 30
        assert report.load.failed == 0
        assert "resilience" not in report.load.snapshot

"""Tests for the micro-engine and the full accelerator (register interface)."""

import numpy as np
import pytest

from repro.hw.accelerator import CIMAccelerator
from repro.hw.context_regs import (
    Command,
    ContextRegisterFile,
    Flags,
    Opcode,
    Register,
    Status,
    decode_scalar,
    encode_scalar,
)
from repro.system.memory import SharedMemory


def make_accelerator(memory=None, **kwargs):
    memory = memory or SharedMemory(4 * 1024 * 1024, 2 * 1024 * 1024)
    return CIMAccelerator(memory, **kwargs), memory


def run_gemm_on_accelerator(acc, mem, a, b, c, alpha, beta, trans_a=False, trans_b=False):
    m, k = (a.shape if not trans_a else a.shape[::-1])
    k2, n = (b.shape if not trans_b else b.shape[::-1])
    assert k == k2
    addr_a, addr_b, addr_c = 0, 256 * 1024, 512 * 1024
    mem.write_array(addr_a, a.astype(np.float32))
    mem.write_array(addr_b, b.astype(np.float32))
    mem.write_array(addr_c, c.astype(np.float32))
    flags = (Flags.TRANS_A if trans_a else Flags.NONE) | (
        Flags.TRANS_B if trans_b else Flags.NONE
    )
    for reg, value in {
        Register.OPCODE: int(Opcode.GEMM),
        Register.ADDR_A: addr_a,
        Register.ADDR_B: addr_b,
        Register.ADDR_C: addr_c,
        Register.DIM_M: m,
        Register.DIM_N: n,
        Register.DIM_K: k,
        Register.ALPHA: encode_scalar(alpha),
        Register.BETA: encode_scalar(beta),
        Register.FLAGS: int(flags),
        Register.ELEM_SIZE: 4,
    }.items():
        acc.mmio_write(reg, value)
    acc.mmio_write(Register.COMMAND, int(Command.START))
    out = mem.read_array(addr_c, m * n).reshape(m, n)
    return out


# ----------------------------------------------------------------------
# Context registers
# ----------------------------------------------------------------------
def test_scalar_fixed_point_roundtrip():
    for value in (0.0, 1.0, 1.5, -2.25, 0.125):
        assert decode_scalar(encode_scalar(value)) == pytest.approx(value, abs=1e-4)


def test_register_file_triggers_start_handler():
    fired = []
    regs = ContextRegisterFile(on_start=lambda: fired.append(True))
    regs.write(Register.COMMAND, int(Command.START))
    assert fired == [True]
    assert regs.status() is Status.BUSY


def test_register_file_rejects_unknown_register():
    regs = ContextRegisterFile(on_start=lambda: None)
    with pytest.raises(KeyError):
        regs.write(0x55, 1)


def test_register_snapshot_contains_all_registers():
    regs = ContextRegisterFile(on_start=lambda: None)
    snapshot = regs.snapshot()
    assert set(snapshot) == {r.name for r in Register}


# ----------------------------------------------------------------------
# GEMM execution paths
# ----------------------------------------------------------------------
def test_gemm_functional_correctness(rng):
    acc, mem = make_accelerator()
    a = rng.random((20, 17), dtype=np.float32)
    b = rng.random((17, 13), dtype=np.float32)
    c = rng.random((20, 13), dtype=np.float32)
    out = run_gemm_on_accelerator(acc, mem, a, b, c, alpha=1.25, beta=0.5)
    ref = 1.25 * (a.astype(np.float64) @ b.astype(np.float64)) + 0.5 * c
    np.testing.assert_allclose(out, ref, rtol=1e-4)
    assert acc.registers.status() is Status.DONE


def test_gemm_transposed_operands(rng):
    acc, mem = make_accelerator()
    a_t = rng.random((9, 12), dtype=np.float32)   # stored as K x M
    b_t = rng.random((10, 9), dtype=np.float32)   # stored as N x K
    c = np.zeros((12, 10), dtype=np.float32)
    out = run_gemm_on_accelerator(
        acc, mem, a_t, b_t, c, alpha=1.0, beta=0.0, trans_a=True, trans_b=True
    )
    ref = a_t.astype(np.float64).T @ b_t.astype(np.float64).T
    np.testing.assert_allclose(out, ref, rtol=1e-4)


def test_gemm_larger_than_crossbar_is_tiled(rng):
    from repro.hw.crossbar import CrossbarConfig

    acc, mem = make_accelerator(crossbar_config=CrossbarConfig(rows=8, cols=8))
    a = rng.random((20, 18), dtype=np.float32)
    b = rng.random((18, 5), dtype=np.float32)
    c = np.zeros((20, 5), dtype=np.float32)
    out = run_gemm_on_accelerator(acc, mem, a, b, c, alpha=1.0, beta=0.0)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    np.testing.assert_allclose(out, ref, rtol=1e-4)
    run = acc.last_run
    # ceil(20/8) * ceil(18/8) = 3 * 3 tiles, each writing a block once.
    assert run.crossbar_write_ops == 9
    assert run.gemv_count == 9 * 5


def test_gemv_opcode_uses_single_column(rng):
    acc, mem = make_accelerator()
    a = rng.random((15, 11), dtype=np.float32)
    x = rng.random((11, 1), dtype=np.float32)
    y = np.zeros((15, 1), dtype=np.float32)
    addr_a, addr_x, addr_y = 0, 64 * 1024, 128 * 1024
    mem.write_array(addr_a, a)
    mem.write_array(addr_x, x)
    mem.write_array(addr_y, y)
    for reg, value in {
        Register.OPCODE: int(Opcode.GEMV),
        Register.ADDR_A: addr_a,
        Register.ADDR_B: addr_x,
        Register.ADDR_C: addr_y,
        Register.DIM_M: 15,
        Register.DIM_K: 11,
        Register.ALPHA: encode_scalar(1.0),
        Register.BETA: encode_scalar(0.0),
        Register.ELEM_SIZE: 4,
    }.items():
        acc.mmio_write(reg, value)
    acc.mmio_write(Register.COMMAND, int(Command.START))
    out = mem.read_array(addr_y, 15)
    np.testing.assert_allclose(out, a @ x.ravel(), rtol=1e-4)
    assert acc.last_run.gemv_count == 1


def test_energy_and_latency_accounting_consistency(rng):
    acc, mem = make_accelerator()
    a = rng.random((16, 16), dtype=np.float32)
    b = rng.random((16, 16), dtype=np.float32)
    c = np.zeros((16, 16), dtype=np.float32)
    run_gemm_on_accelerator(acc, mem, a, b, c, alpha=1.0, beta=0.0)
    run = acc.last_run
    assert run.energy_j > 0
    assert run.latency_s > 0
    assert run.crossbar_cell_writes == 16 * 16
    assert run.gemv_count == 16
    assert run.macs == 16 * 16 * 16
    # The breakdown must sum (approximately) to the reported total.
    assert sum(run.energy_breakdown.values()) == pytest.approx(run.energy_j, rel=1e-6)
    # Crossbar writes dominate the accelerator energy for one GEMM of this
    # shape (256 cells * 200 pJ >> compute energy).
    assert run.energy_breakdown["cim.crossbar_write"] == pytest.approx(
        16 * 16 * acc.energy_model.write_energy_per_cell_j
    )


def test_double_buffering_reduces_latency(rng):
    a = rng.random((32, 32), dtype=np.float32)
    b = rng.random((32, 32), dtype=np.float32)
    c = np.zeros((32, 32), dtype=np.float32)
    acc_db, mem_db = make_accelerator(double_buffering=True)
    acc_nodb, mem_nodb = make_accelerator(double_buffering=False)
    run_gemm_on_accelerator(acc_db, mem_db, a, b, c, 1.0, 0.0)
    run_gemm_on_accelerator(acc_nodb, mem_nodb, a, b, c, 1.0, 0.0)
    assert acc_db.last_run.latency_s < acc_nodb.last_run.latency_s


def test_unsupported_opcode_sets_error_status():
    acc, mem = make_accelerator()
    acc.mmio_write(Register.OPCODE, 99)
    with pytest.raises(ValueError):
        acc.mmio_write(Register.COMMAND, int(Command.START))
    assert acc.registers.status() is Status.ERROR


def test_reset_stats_clears_history(rng):
    acc, mem = make_accelerator()
    a = rng.random((4, 4), dtype=np.float32)
    run_gemm_on_accelerator(acc, mem, a, a, np.zeros((4, 4), dtype=np.float32), 1.0, 0.0)
    assert acc.completed_runs
    acc.reset_stats()
    assert acc.completed_runs == [] and acc.last_run is None
    assert acc.total_energy_j() == 0.0

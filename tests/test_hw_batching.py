"""Tests for batched GEMV dispatch and crossbar operand residency."""

import numpy as np
import pytest

from repro.hw.accelerator import CIMAccelerator
from repro.hw.crossbar import Crossbar, CrossbarConfig
from repro.system import CimSystem, SystemConfig
from repro.system.memory import SharedMemory

from tests.test_hw_accelerator import make_accelerator, run_gemm_on_accelerator


# ----------------------------------------------------------------------
# Batched crossbar dispatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["ideal", "quantized"])
def test_crossbar_gemv_batch_matches_sequential(mode, rng):
    config = CrossbarConfig(rows=24, cols=20, mode=mode)
    matrix = rng.random((24, 20)) - 0.5
    xs = rng.random((7, 24)) - 0.5

    seq = Crossbar(config)
    seq.write(matrix)
    seq_results = np.stack([seq.gemv(x)[0] for x in xs])

    bat = Crossbar(config)
    bat.write(matrix)
    bat_results, report = bat.gemv_batch(xs)

    if mode == "quantized":
        # The quantized path is exact integer arithmetic in float64, so
        # batching is bit-identical to the sequential dispatch.
        np.testing.assert_array_equal(seq_results, bat_results)
    else:
        # Ideal mode maps to BLAS gemv/gemm, which may round differently.
        np.testing.assert_allclose(seq_results, bat_results, rtol=1e-13)
    assert report.gemv_count == 7
    assert report.macs == 7 * 24 * 20
    assert bat.total_gemvs == seq.total_gemvs == 7
    assert bat.total_macs == seq.total_macs
    assert bat.adc.total_conversions == seq.adc.total_conversions
    assert bat.digital.alu_ops == seq.digital.alu_ops
    assert bat.digital.weighted_sums == seq.digital.weighted_sums


@pytest.mark.parametrize("mode", ["ideal", "quantized"])
def test_batched_accelerator_accounting_matches_sequential(mode, rng):
    a = rng.random((40, 30), dtype=np.float32)
    b = rng.random((30, 9), dtype=np.float32)
    c = rng.random((40, 9), dtype=np.float32)
    runs = {}
    outs = {}
    for batch in (True, False):
        mem = SharedMemory(4 * 1024 * 1024, 2 * 1024 * 1024)
        acc = CIMAccelerator(
            mem,
            crossbar_config=CrossbarConfig(rows=16, cols=16, mode=mode),
            batch_gemv=batch,
        )
        outs[batch] = run_gemm_on_accelerator(acc, mem, a, b, c, alpha=1.25, beta=0.5)
        runs[batch] = acc.last_run
    if mode == "quantized":
        np.testing.assert_array_equal(outs[True], outs[False])
    else:
        # Ideal mode: BLAS gemm vs gemv may differ by a few ULPs.
        np.testing.assert_allclose(outs[True], outs[False], rtol=1e-6)
    for field in ("gemv_count", "crossbar_cell_writes", "crossbar_write_ops",
                  "macs", "dma_bytes"):
        assert getattr(runs[True], field) == getattr(runs[False], field), field
    assert runs[True].latency_s == pytest.approx(runs[False].latency_s, rel=1e-12)
    assert runs[True].energy_j == pytest.approx(runs[False].energy_j, rel=1e-12)


def test_batched_conv_accounting_matches_sequential(rng):
    from repro import compile_source
    from repro.codegen.executor import OffloadExecutor
    from repro.workloads.polybench import KERNELS

    kernel = KERNELS["conv"]
    params = kernel.params("SMALL")
    arrays = kernel.arrays("SMALL", seed=9)
    result = compile_source(kernel.source)
    reports = {}
    outs = {}
    for batch in (True, False):
        system = CimSystem(SystemConfig(batch_gemv=batch))
        outs[batch], reports[batch] = OffloadExecutor(system).run(
            result.program, params, arrays
        )
    np.testing.assert_allclose(outs[True]["out"], outs[False]["out"], rtol=1e-6)
    assert reports[True].gemv_count == reports[False].gemv_count
    assert reports[True].crossbar_cell_writes == reports[False].crossbar_cell_writes
    assert reports[True].accelerator_energy_j == pytest.approx(
        reports[False].accelerator_energy_j, rel=1e-12
    )
    assert reports[True].accelerator_time_s == pytest.approx(
        reports[False].accelerator_time_s, rel=1e-12
    )


# ----------------------------------------------------------------------
# Resident operand reuse across GEMV invocations
# ----------------------------------------------------------------------
def _gemv_setup(system, rng, m, n):
    runtime = system.runtime
    runtime.cim_init(0)
    a = rng.random((m, n), dtype=np.float32)
    x = rng.random(n, dtype=np.float32)
    a_buf = runtime.cim_malloc(m * n * 4)
    x_buf = runtime.cim_malloc(n * 4)
    y_buf = runtime.cim_malloc(m * 4)
    runtime.cim_host_to_dev(a_buf, a)
    runtime.cim_host_to_dev(x_buf, x)
    return a, x, a_buf, x_buf, y_buf


def test_repeated_gemv_reuses_programmed_matrix(rng):
    system = CimSystem()
    m = n = 20
    a, x, a_buf, x_buf, y_buf = _gemv_setup(system, rng, m, n)

    first = system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    assert first.accelerator.crossbar_cell_writes == m * n
    # The matrix stays resident: streaming another vector costs no writes.
    second = system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    assert second.accelerator.crossbar_cell_writes == 0
    assert second.accelerator.gemv_count == 1
    assert system.accelerator.counters.get("cim.crossbar_write_reuse") == 1
    y = system.runtime.cim_dev_to_host(y_buf, (m,))
    np.testing.assert_allclose(y, a @ x, rtol=1e-4)


def test_transposed_gemv_does_not_reuse_programmed_matrix(rng):
    """A and A^T at the same address are different operands (mvt/bicg)."""
    system = CimSystem()
    m = n = 16
    a, x, a_buf, x_buf, y_buf = _gemv_setup(system, rng, m, n)

    system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    second = system.blas.sgemv(True, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    assert second.accelerator.crossbar_cell_writes == m * n
    y = system.runtime.cim_dev_to_host(y_buf, (m,))
    np.testing.assert_allclose(y, a.T @ x, rtol=1e-4)


def test_rewritten_operand_is_reprogrammed(rng):
    """Host updates to the buffer invalidate residency (staleness guard)."""
    system = CimSystem()
    m = n = 12
    a, x, a_buf, x_buf, y_buf = _gemv_setup(system, rng, m, n)

    system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    a2 = rng.random((m, n), dtype=np.float32)
    system.runtime.cim_host_to_dev(a_buf, a2)
    second = system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    assert second.accelerator.crossbar_cell_writes == m * n
    y = system.runtime.cim_dev_to_host(y_buf, (m,))
    np.testing.assert_allclose(y, a2 @ x, rtol=1e-4)


def test_reset_stats_invalidates_residency(rng):
    """Repeated identical measurements must report identical costs."""
    system = CimSystem()
    m = n = 14
    a, x, a_buf, x_buf, y_buf = _gemv_setup(system, rng, m, n)
    first = system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    system.reset_stats()
    second = system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    assert second.accelerator.crossbar_cell_writes == m * n
    assert second.accelerator.energy_j == pytest.approx(first.accelerator.energy_j)
    assert second.accelerator.latency_s == pytest.approx(first.accelerator.latency_s)


def test_residency_can_be_disabled(rng):
    system = CimSystem(SystemConfig(reuse_resident_gemv=False))
    m = n = 10
    a, x, a_buf, x_buf, y_buf = _gemv_setup(system, rng, m, n)
    system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    second = system.blas.sgemv(False, m, n, 1.0, a_buf, n, x_buf, 0.0, y_buf)
    assert second.accelerator.crossbar_cell_writes == m * n


def test_gemm_calls_still_reprogram_between_invocations(rng):
    """Cross-call residency is a GEMV-streaming feature; separate (unfused)
    GEMM invocations still pay the write — that is exactly the endurance
    cost the paper's kernel fusion removes."""
    mem = SharedMemory(4 * 1024 * 1024, 2 * 1024 * 1024)
    acc = CIMAccelerator(mem)
    a = rng.random((8, 8), dtype=np.float32)
    b = rng.random((8, 8), dtype=np.float32)
    c = np.zeros((8, 8), dtype=np.float32)
    run_gemm_on_accelerator(acc, mem, a, b, c, 1.0, 0.0)
    run_gemm_on_accelerator(acc, mem, a, b, c, 1.0, 0.0)
    assert acc.total_cell_writes() == 2 * 8 * 8

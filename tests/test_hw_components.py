"""Tests for ADC, buffers, digital logic, tile, timeline, and endurance."""

import numpy as np
import pytest

from repro.hw.adc import ADCConfig, ADCStage
from repro.hw.buffers import BufferOverflowError, SRAMBuffer
from repro.hw.digital_logic import DigitalLogic
from repro.hw.endurance import EnduranceTracker, system_lifetime_years
from repro.hw.energy import CimEnergyModel, HostEnergyModel, TABLE_I, table_i_rows
from repro.hw.tile import CIMTile
from repro.hw.timeline import Timeline


# ----------------------------------------------------------------------
# ADC
# ----------------------------------------------------------------------
def test_adc_conversion_rounds():
    adc = ADCStage(ADCConfig(columns_per_adc=32))
    assert adc.conversion_rounds(256) == 8
    assert adc.conversion_rounds(1) == 1
    assert adc.conversion_rounds(33) == 2


def test_adc_quantisation_error_bounded():
    adc = ADCStage(ADCConfig(resolution_bits=8))
    values = np.linspace(-1.0, 1.0, 100)
    quantised = adc.convert(values, full_scale=1.0)
    assert np.abs(quantised - values).max() <= 1.0 / 256 + 1e-12


def test_adc_saturates_at_full_scale():
    adc = ADCStage()
    out = adc.convert(np.array([10.0, -10.0]), full_scale=1.0)
    assert out.max() <= 1.0 and out.min() >= -1.0


# ----------------------------------------------------------------------
# Buffers
# ----------------------------------------------------------------------
def test_buffer_write_read_roundtrip():
    buf = SRAMBuffer("row", 64)
    payload = bytes(range(16))
    buf.write(payload, offset=8)
    assert bytes(buf.read(16, offset=8)) == payload
    assert buf.bytes_written == 16 and buf.bytes_read == 16


def test_buffer_overflow_detected():
    buf = SRAMBuffer("row", 16)
    with pytest.raises(BufferOverflowError):
        buf.write(bytes(32))
    with pytest.raises(BufferOverflowError):
        buf.read(8, offset=12)


# ----------------------------------------------------------------------
# Digital logic
# ----------------------------------------------------------------------
def test_weighted_column_sum():
    logic = DigitalLogic()
    msb = np.array([1.0, 2.0])
    lsb = np.array([3.0, 4.0])
    combined = logic.weighted_column_sum(msb, lsb, device_bits=4)
    np.testing.assert_array_equal(combined, [19.0, 36.0])
    assert logic.weighted_sums == 1
    assert logic.alu_ops == 2


def test_scale_and_accumulate_counts_ops():
    logic = DigitalLogic()
    acc = np.zeros(4)
    out = logic.scale_and_accumulate(acc, np.ones(4), scale=2.0)
    np.testing.assert_array_equal(out, 2 * np.ones(4))
    assert logic.alu_ops == 8


def test_reduce_sum():
    logic = DigitalLogic()
    assert logic.reduce_sum(np.array([1.0, 2.0, 3.0])) == 6.0
    assert logic.alu_ops == 2


# ----------------------------------------------------------------------
# Tile
# ----------------------------------------------------------------------
def test_tile_write_and_gemv_costs(rng):
    tile = CIMTile()
    matrix = rng.random((8, 8))
    cost = tile.write_matrix(matrix)
    model = tile.energy_model
    assert cost.energy_j == pytest.approx(
        64 * model.write_energy_per_cell_j + (64 + 8) * model.buffer_energy_per_byte_j
    )
    assert cost.latency_s == pytest.approx(8 * model.write_latency_per_row_s)
    result, gemv_cost = tile.gemv(rng.random(8), rows_active=8, cols_active=8)
    assert result.shape == (8,)
    assert gemv_cost.latency_s == pytest.approx(model.compute_latency_per_gemv_s)
    assert tile.counters.get("cim.gemv_ops") == 1
    assert tile.energy.get("cim.mixed_signal") == pytest.approx(
        model.mixed_signal_energy_per_gemv_j
    )


def test_tile_digital_ops_energy():
    tile = CIMTile()
    cost = tile.digital_ops(100)
    assert cost.energy_j == pytest.approx(100 * tile.energy_model.digital_alu_op_j)


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
def test_timeline_makespan_and_busy_time():
    timeline = Timeline()
    timeline.record("dma", "fill", 0.0, 2.0)
    timeline.record("crossbar", "compute", 1.0, 3.0)
    assert timeline.makespan_s == 4.0
    assert timeline.busy_time("dma") == 2.0
    assert timeline.busy_time("crossbar") == 3.0
    assert len(timeline) == 2
    rendering = timeline.render(width=20)
    assert "dma" in rendering and "crossbar" in rendering


def test_timeline_rejects_negative_duration():
    with pytest.raises(ValueError):
        Timeline().record("dma", "x", 0.0, -1.0)


# ----------------------------------------------------------------------
# Endurance / Eq. (1)
# ----------------------------------------------------------------------
def test_lifetime_equation_matches_hand_computation():
    # 1e7 writes endurance, 512 KB crossbar, 1 MB/s write traffic.
    years = system_lifetime_years(1e7, 512 * 1024, 1e6)
    expected_seconds = 1e7 * 512 * 1024 / 1e6
    assert years == pytest.approx(expected_seconds / (365.25 * 24 * 3600))


def test_lifetime_scales_linearly_with_endurance():
    base = system_lifetime_years(1e7, 512 * 1024, 1e6)
    assert system_lifetime_years(4e7, 512 * 1024, 1e6) == pytest.approx(4 * base)


def test_lifetime_zero_traffic_is_infinite():
    assert system_lifetime_years(1e7, 512 * 1024, 0.0) == float("inf")


def test_lifetime_invalid_inputs():
    with pytest.raises(ValueError):
        system_lifetime_years(0, 512, 1.0)
    with pytest.raises(ValueError):
        system_lifetime_years(1e7, 512, -1.0)


def test_endurance_tracker_aggregates():
    tracker = EnduranceTracker(crossbar_size_bytes=1024)
    tracker.record_kernel(bytes_written=2048, execution_time_s=1.0)
    tracker.record_kernel(bytes_written=2048, execution_time_s=1.0)
    assert tracker.write_traffic_bytes_per_s == pytest.approx(2048)
    curve = tracker.lifetime_curve([1e6, 2e6])
    assert curve[1][1] == pytest.approx(2 * curve[0][1])


# ----------------------------------------------------------------------
# Table I constants
# ----------------------------------------------------------------------
def test_table_i_values():
    cim = TABLE_I.cim
    assert cim.crossbar_rows == 256 and cim.crossbar_cols == 256
    assert cim.compute_energy_per_mac_j == pytest.approx(200e-15)
    assert cim.write_energy_per_cell_j == pytest.approx(200e-12)
    assert cim.compute_latency_per_gemv_s == pytest.approx(1e-6)
    assert cim.write_latency_per_row_s == pytest.approx(2.5e-6)
    host = TABLE_I.host
    assert host.energy_per_instruction_j == pytest.approx(128e-12)
    assert host.frequency_hz == pytest.approx(1.2e9)
    assert host.cores == 2


def test_table_i_rows_cover_all_parameters():
    rows = table_i_rows()
    text = " ".join(f"{k} {v}" for k, v in rows)
    for fragment in ("256x256", "200 fJ", "200 pJ", "3.9 nJ", "Arm-A7", "128 pJ"):
        assert fragment in text

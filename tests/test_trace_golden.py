"""Golden-trace differential gates (PR 7 satellite).

The fixtures under ``tests/traces/`` are recordings of the canonical
scenarios in :mod:`repro.trace.scenarios` at their pinned seeds.
Replaying them through *today's* code and diffing bit-for-bit is the
cross-version regression gate: any change that moves a response byte, a
wear integer, an energy ``fsum`` or a scheduling decision fails here.

When an intentional behavior change lands, re-record per docs/trace.md::

    PYTHONPATH=src python -m repro.cli serve --scenario <name> \
        --record tests/traces/<name>.jsonl
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.trace import (
    SCENARIOS,
    TraceReplayer,
    decode_array,
    load_trace,
)

TRACES_DIR = Path(__file__).parent / "traces"

FIXTURES = {
    "serve_multitenant": TRACES_DIR / "serve_multitenant.jsonl",
    "fleet_faultstorm": TRACES_DIR / "fleet_faultstorm.jsonl",
}


@pytest.fixture(scope="module", params=sorted(FIXTURES))
def golden(request):
    """(scenario name, loaded trace, replay result) — replayed once per
    fixture, shared across the module's assertions."""
    name = request.param
    trace = load_trace(FIXTURES[name])
    return name, trace, TraceReplayer(trace).replay()


def test_fixtures_exist_and_load():
    for name, path in FIXTURES.items():
        assert path.exists(), f"missing golden fixture {path}"
        trace = load_trace(path)
        assert trace.kind in ("serve", "fleet")


def test_golden_replay_is_bit_identical(golden):
    name, _, result = golden
    assert result.identical, (
        f"golden trace {name!r} no longer replays bit-identically:\n"
        + result.diff.summary()
    )


def test_golden_responses_bit_identical_arrays(golden):
    """Beyond the diff verdict: decode the recorded and replayed result
    payloads and compare the raw bytes directly."""
    _, trace, result = golden
    recorded = trace.responses()
    replayed = result.replayed.responses()
    assert recorded.keys() == replayed.keys()
    compared = 0
    for request_id, response in recorded.items():
        for array_name, payload in (response.get("result") or {}).items():
            expected = decode_array(payload)
            actual = decode_array(replayed[request_id]["result"][array_name])
            assert expected.dtype == actual.dtype
            assert expected.tobytes() == actual.tobytes()
            compared += 1
    assert compared > 0, "fixture has no completed responses to compare"


def test_golden_bills_match_exactly(golden):
    """Integer wear by ==, fsum energies by exact float equality —
    replay determinism means the same IEEE doubles, not 'close'."""
    _, trace, result = golden
    for tenant, bill in trace.tenant_bills().items():
        replayed = result.replayed.tenant_bills()[tenant]
        assert bill["wear_bytes"] == replayed["wear_bytes"]
        assert bill["macs"] == replayed["macs"]
        assert bill["dma_bytes"] == replayed["dma_bytes"]
        assert bill["energy_j"] == replayed["energy_j"]
        assert bill["accelerator_energy_j"] == replayed["accelerator_energy_j"]
    for device_id, bill in trace.device_bills().items():
        replayed = result.replayed.device_bills()[device_id]
        assert bill["physical_cell_writes"] == replayed["physical_cell_writes"]
        assert bill["billed_wear_bytes"] == replayed["billed_wear_bytes"]
        assert bill["compensated_wear_bytes"] == replayed["compensated_wear_bytes"]
        assert bill["physical_energy_j"] == replayed["physical_energy_j"]
        assert bill["billed_energy_j"] == replayed["billed_energy_j"]
        assert bill["partition_ok"] and replayed["partition_ok"]


def test_golden_fixture_matches_pinned_scenario(golden):
    """The committed fixture is the scenario at its pinned seed — a
    fresh recording must reproduce the fixture, not just replay it (so
    the fixture cannot drift from the generator)."""
    name, trace, _ = golden
    from repro.trace.replayer import diff_traces

    fresh = SCENARIOS[name]()
    diff = diff_traces(trace, fresh)
    assert diff.identical, (
        f"scenario {name!r} no longer reproduces its committed fixture "
        f"(re-record if the change is intentional):\n" + diff.summary()
    )


def test_serve_fixture_covers_every_terminal_path():
    trace = load_trace(FIXTURES["serve_multitenant"])
    statuses = {r["status"] for r in trace.responses().values()}
    assert statuses == {"completed", "rejected", "failed"}


def test_fleet_fixture_is_a_real_storm():
    """The fleet fixture must keep exercising the interesting machinery:
    injected faults, a drained device, a compensation, migrations."""
    trace = load_trace(FIXTURES["fleet_faultstorm"])
    assert len(trace.of_kind("fault")) >= 2
    states = {b["device_id"]: b["state"] for b in trace.device_bills().values()}
    assert "drained" in states.values()
    assert sum(b["compensations"] for b in trace.device_bills().values()) >= 1
    assert sum(r["migrations"] for r in trace.responses().values()) >= 1
    assert all(r["status"] == "completed" for r in trace.responses().values())


def test_fleet_results_are_exact_integer_float32(golden):
    """Cross-machine bit-identity rests on integer-valued float32
    payloads; guard the property the fixtures are built on."""
    _, trace, _ = golden
    for submission in trace.submissions():
        for array_name, payload in submission["arrays"].items():
            array = decode_array(payload)
            assert array.dtype == np.float32
            np.testing.assert_array_equal(array, np.trunc(array))

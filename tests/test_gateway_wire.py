"""Unit tests for the gateway wire schema (PR 9).

The wire format crosses a process boundary, so the contract under test
is defensive bit-exactness: arrays round-trip byte-for-byte through the
base64+sha256 payload encoding, floats round-trip exactly through JSON,
and every malformed frame is rejected whole with a
:class:`~repro.gateway.wire.WireFormatError` before any state is touched.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.gateway.wire import (
    FAULT_MARKERS,
    GatewayRequest,
    GatewayResponse,
    RESPONSE_STATUSES,
    USAGE_FIELDS,
    WireFormatError,
)

SOURCE = "void k(int N, float x[N]) { for (int i = 0; i < N; i++) x[i] += 1.0; }"


def make_request(**overrides) -> GatewayRequest:
    fields = dict(
        request_id=7,
        tenant="acme",
        source=SOURCE,
        params={"N": 4, "scale": 0.1},
        arrays={"x": np.arange(4, dtype=np.float32)},
    )
    fields.update(overrides)
    return GatewayRequest(**fields)


class TestRequestWire:
    def test_roundtrip_is_bit_exact(self):
        rng = np.random.default_rng(3)
        arrays = {
            "A": rng.random((5, 3), dtype=np.float32),
            "x": rng.random(3, dtype=np.float64),
        }
        request = make_request(params={"M": 5, "N": 3, "alpha": 0.1 + 0.2}, arrays=arrays)
        decoded = GatewayRequest.from_json(request.to_json())
        assert decoded.request_id == 7
        assert decoded.tenant == "acme"
        assert decoded.source == SOURCE
        assert decoded.params == request.params  # floats exact via JSON repr
        for name, original in arrays.items():
            copy = decoded.arrays[name]
            assert copy.dtype == original.dtype
            assert copy.shape == original.shape
            assert copy.tobytes() == original.tobytes()

    def test_attempt_and_fault_survive_the_wire(self):
        for marker in FAULT_MARKERS:
            decoded = GatewayRequest.from_json(
                make_request(attempt=3, fault=marker).to_json()
            )
            assert decoded.attempt == 3
            assert decoded.fault == marker

    def test_numpy_scalar_params_become_json_native(self):
        request = make_request(params={"N": np.int64(4), "a": np.float32(0.5)})
        wire = json.loads(request.to_json())
        assert wire["params"] == {"N": 4, "a": 0.5}

    def test_unknown_fault_marker_rejected(self):
        with pytest.raises(WireFormatError, match="fault marker"):
            make_request(fault="die-randomly")

    def test_empty_tenant_and_source_rejected(self):
        with pytest.raises(WireFormatError, match="tenant"):
            make_request(tenant="")
        with pytest.raises(WireFormatError, match="source"):
            make_request(source="   ")

    def test_corrupt_json_rejected(self):
        with pytest.raises(WireFormatError, match="corrupt JSON"):
            GatewayRequest.from_json("{not json")

    def test_missing_field_rejected(self):
        wire = make_request().to_wire()
        del wire["tenant"]
        with pytest.raises(WireFormatError, match="missing field 'tenant'"):
            GatewayRequest.from_wire(wire)

    def test_tampered_payload_hash_rejected(self):
        wire = make_request().to_wire()
        wire["arrays"]["x"]["sha256"] = "0" * 64
        with pytest.raises(WireFormatError, match="sha256"):
            GatewayRequest.from_wire(wire)


class TestResponseWire:
    def make_response(self, **overrides) -> GatewayResponse:
        fields = dict(
            request_id=7,
            tenant="acme",
            status="completed",
            worker_id=1,
            result={"y": np.arange(4, dtype=np.float32)},
            usage={name: 1.0 for name in USAGE_FIELDS},
            housekeeping_energy_j=[1e-9, 2e-9],
            physical={"energy_j": 3.5e-8, "macs": 64},
            compile_hits=1,
        )
        fields.update(overrides)
        return GatewayResponse(**fields)

    def test_roundtrip_is_bit_exact(self):
        response = self.make_response(
            usage={name: 0.1 + 0.2 for name in USAGE_FIELDS}
        )
        decoded = GatewayResponse.from_json(response.to_json())
        assert decoded.status == "completed"
        assert decoded.worker_id == 1
        assert decoded.usage == response.usage  # exact float equality
        assert decoded.housekeeping_energy_j == [1e-9, 2e-9]
        assert decoded.physical == response.physical
        assert decoded.compile_hits == 1
        assert (
            decoded.result["y"].tobytes() == response.result["y"].tobytes()
        )

    def test_every_status_roundtrips(self):
        for status in RESPONSE_STATUSES:
            decoded = GatewayResponse.from_json(
                self.make_response(status=status, result={}).to_json()
            )
            assert decoded.status == status

    def test_unknown_status_rejected(self):
        with pytest.raises(WireFormatError, match="unknown status"):
            self.make_response(status="exploded")

    def test_latency_property_needs_both_milestones(self):
        response = self.make_response()
        assert response.latency_s is None
        response.submitted_s = 1.0
        assert response.latency_s is None
        response.completed_s = 1.25
        assert response.latency_s == pytest.approx(0.25)

    def test_milestones_are_gateway_side_only(self):
        # The worker never ships timestamps; the wire frame has none.
        wire = self.make_response().to_wire()
        assert "submitted_s" not in wire
        assert "completed_s" not in wire

"""Unit tests for the multi-tenant serving layer (PR 4 tentpole).

Covers the event loop, admission control (backpressure + lifetime
quotas), per-tenant accounting partition, metrics, the fused-GEMV plan
extraction and the server lifecycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CimServer, OffloadExecutor, ServerConfig, TenantQuota
from repro.eval import format_tenant_table, tenant_usage_rows
from repro.hw.endurance import wear_budget_bytes
from repro.serve import (
    AdmissionError,
    RequestStatus,
    ServeError,
    VirtualClock,
    extract_fused_gemv_plan,
    percentile,
    stationary_operand_arrays,
)

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

GEMM_SOURCE = """
void gemm(int M, int N, float C[M][M], float A[M][M], float B[M][M]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < M; j++)
      for (int k = 0; k < M; k++)
        C[i][j] += A[i][k] * B[k][j];
}
"""

PARAMS = {"M": 24, "N": 24}


def _gemv_arrays(rng, matrix=None):
    return {
        "A": matrix if matrix is not None else rng.random((24, 24), dtype=np.float32),
        "x": rng.random(24, dtype=np.float32),
        "y": np.zeros(24, dtype=np.float32),
    }


@pytest.fixture
def server():
    with CimServer(ServerConfig(batch_window_s=1e-4, max_batch_size=8)) as srv:
        yield srv


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
def test_virtual_clock_monotonic():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance_to(1.0)  # backwards is a no-op
    assert clock.now_s == 1.5
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    with pytest.raises(ValueError):
        percentile([], 50)


# ----------------------------------------------------------------------
# Event loop basics
# ----------------------------------------------------------------------
def test_single_request_roundtrip(server):
    rng = np.random.default_rng(1)
    arrays = _gemv_arrays(rng)
    handle = server.submit("alice", GEMV_SOURCE, PARAMS, arrays)
    assert handle.status is RequestStatus.SUBMITTED
    with pytest.raises(ServeError, match="drive"):
        handle.result()
    snap = server.drain()
    assert handle.status is RequestStatus.COMPLETED
    assert handle.latency_s > 0
    assert snap["requests"]["completed"] == 1
    direct, _ = OffloadExecutor().run(
        server.compiler.compile(GEMV_SOURCE, size_hint=PARAMS).program,
        PARAMS,
        {name: value.copy() for name, value in arrays.items()},
    )
    mine = handle.result()
    for name in direct:
        assert np.array_equal(direct[name], mine[name])


def test_submissions_snapshot_arrays(server):
    rng = np.random.default_rng(2)
    arrays = _gemv_arrays(rng)
    x_at_submit = arrays["x"].copy()
    handle = server.submit("alice", GEMV_SOURCE, PARAMS, arrays)
    arrays["x"][:] = -1.0  # caller mutates after submit
    server.drain()
    expected = handle.result()["A"].astype(np.float64) @ x_at_submit.astype(np.float64)
    np.testing.assert_allclose(handle.result()["y"], expected, rtol=1e-5)


def test_arrivals_must_be_nondecreasing(server):
    rng = np.random.default_rng(3)
    server.submit("alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=1.0)
    with pytest.raises(ServeError, match="past"):
        server.submit("bob", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=0.5)


def test_same_matrix_requests_share_one_batch(server):
    rng = np.random.default_rng(4)
    matrix = rng.random((24, 24), dtype=np.float32)
    handles = [
        server.submit(
            f"tenant{i}",
            GEMV_SOURCE,
            PARAMS,
            _gemv_arrays(rng, matrix),
            arrival_s=i * 1e-5,
        )
        for i in range(4)
    ]
    server.drain()
    assert len({handle.batch_id for handle in handles}) == 1
    assert all(handle.batch_size == 4 for handle in handles)
    assert server.metrics.fused_batches == 1
    # Only the batch opener programmed the crossbar.
    writes = [handle.report.crossbar_cell_writes for handle in handles]
    assert writes[0] == 24 * 24
    assert writes[1:] == [0, 0, 0]


def test_different_matrices_do_not_batch(server):
    rng = np.random.default_rng(5)
    handles = [
        server.submit(
            "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=i * 1e-5
        )
        for i in range(3)
    ]
    server.drain()
    assert len({handle.batch_id for handle in handles}) == 3
    # Every request programmed its own matrix.
    assert all(h.report.crossbar_cell_writes == 24 * 24 for h in handles)


def test_batching_window_bounds_batch(server):
    rng = np.random.default_rng(6)
    matrix = rng.random((24, 24), dtype=np.float32)
    inside = server.submit(
        "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=0.0
    )
    outside = server.submit(
        "bob", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=1.0
    )
    server.drain()
    assert inside.batch_id != outside.batch_id


def test_max_batch_size_enforced():
    rng = np.random.default_rng(7)
    matrix = rng.random((24, 24), dtype=np.float32)
    with CimServer(ServerConfig(batch_window_s=1e-3, max_batch_size=3)) as server:
        handles = [
            server.submit(
                "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=0.0
            )
            for _ in range(7)
        ]
        server.drain()
        sizes = [handle.batch_size for handle in handles]
        assert max(sizes) == 3
        assert all(handle.done for handle in handles)


def test_generic_path_for_gemm_programs(server):
    rng = np.random.default_rng(8)
    arrays = {
        "A": rng.random((12, 12), dtype=np.float32),
        "B": rng.random((12, 12), dtype=np.float32),
        "C": np.zeros((12, 12), dtype=np.float32),
    }
    handle = server.submit("alice", GEMM_SOURCE, {"M": 12, "N": 12}, arrays)
    server.drain()
    assert server.metrics.fused_batches == 0
    assert server.metrics.batches == 1
    direct, _ = OffloadExecutor().run(
        server.compiler.compile(GEMM_SOURCE, size_hint={"M": 12, "N": 12}).program,
        {"M": 12, "N": 12},
        {name: value.copy() for name, value in arrays.items()},
    )
    for name in direct:
        assert np.array_equal(direct[name], handle.result()[name])


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_queue_backpressure_rejects():
    rng = np.random.default_rng(9)
    config = ServerConfig(
        batch_window_s=0.0,
        default_quota=TenantQuota(max_queue_depth=2),
    )
    with CimServer(config) as server:
        # All arrive at t=0; the queue holds 2, the rest bounce.
        handles = [
            server.submit(
                "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=0.0
            )
            for _ in range(5)
        ]
        server.drain()
        statuses = [handle.status for handle in handles]
        assert statuses.count(RequestStatus.REJECTED) == 3
        assert statuses.count(RequestStatus.COMPLETED) == 2
        rejected = next(h for h in handles if h.status is RequestStatus.REJECTED)
        with pytest.raises(AdmissionError, match="queue full"):
            rejected.result()
        assert server.metrics.rejected == 3


def test_wear_quota_in_lifetime_terms():
    rng = np.random.default_rng(10)
    config = ServerConfig(batch_window_s=0.0)
    with CimServer(config) as server:
        # A budget worth less than one 24x24 programming: the first
        # request (cold crossbar) spends it, later arrivals bounce.
        budget = wear_budget_bytes(
            cell_endurance_writes=25e6,
            crossbar_size_bytes=server.ledger.crossbar_size_bytes,
            min_lifetime_years=10.0,
            horizon_s=1e-9,
        )
        assert budget < 24 * 24
        server.set_quota("greedy", TenantQuota(wear_budget_bytes=budget))
        first = server.submit(
            "greedy", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=0.0
        )
        server.drain()
        second = server.submit(
            "greedy", GEMV_SOURCE, PARAMS, _gemv_arrays(rng)
        )
        server.drain()
        assert first.status is RequestStatus.COMPLETED
        assert second.status is RequestStatus.REJECTED
        assert "wear quota" in second.reject_reason


def test_energy_quota():
    rng = np.random.default_rng(11)
    with CimServer(ServerConfig(batch_window_s=0.0)) as server:
        server.set_quota("metered", TenantQuota(energy_budget_j=1e-30))
        first = server.submit("metered", GEMV_SOURCE, PARAMS, _gemv_arrays(rng))
        server.drain()
        second = server.submit("metered", GEMV_SOURCE, PARAMS, _gemv_arrays(rng))
        server.drain()
        assert first.status is RequestStatus.COMPLETED  # budget spent, not pre-checked
        assert second.status is RequestStatus.REJECTED
        assert "energy quota" in second.reject_reason


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(max_queue_depth=0)
    with pytest.raises(ValueError):
        TenantQuota(weight=0.0)
    with pytest.raises(ValueError):
        wear_budget_bytes(25e6, 65536, min_lifetime_years=0.0, horizon_s=1.0)
    with pytest.raises(ValueError):
        wear_budget_bytes(25e6, 65536, 10.0, 1.0, share=1.5)


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_accounting_partitions_device_totals(server):
    rng = np.random.default_rng(12)
    matrix = rng.random((24, 24), dtype=np.float32)
    for i in range(9):
        tenant = ("alice", "bob", "carol")[i % 3]
        use_shared = i % 2 == 0
        server.submit(
            tenant,
            GEMV_SOURCE,
            PARAMS,
            _gemv_arrays(rng, matrix if use_shared else None),
            arrival_s=i * 3e-5,
        )
    server.drain()
    checks = server.ledger.verify_partition(server.system.accelerator)
    assert all(checks.values()), checks
    # Integer wear partitions exactly.
    total_wear = sum(a.wear_bytes for a in server.ledger.tenants.values())
    assert total_wear == server.system.accelerator.total_cell_writes()
    # Request count conservation.
    assert sum(a.completed for a in server.ledger.tenants.values()) == 9


def test_tenant_usage_rows_and_table(server):
    rng = np.random.default_rng(13)
    for i in range(4):
        server.submit(
            ("alice", "bob")[i % 2],
            GEMV_SOURCE,
            PARAMS,
            _gemv_arrays(rng),
            arrival_s=i * 1e-4,
        )
    server.drain()
    rows = tenant_usage_rows(server)
    assert [row.tenant for row in rows] == ["alice", "bob"]
    assert all(row.completed == 2 for row in rows)
    assert sum(row.wear_share for row in rows) == pytest.approx(1.0)
    assert all(row.implied_lifetime_years > 0 for row in rows)
    table = format_tenant_table(rows)
    assert "alice" in table and "lifetime" in table


def test_lease_timeline_records_batches(server):
    rng = np.random.default_rng(14)
    matrix = rng.random((24, 24), dtype=np.float32)
    for i in range(3):
        server.submit(
            "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=0.0
        )
    server.drain()
    events = server.timeline.by_component()["serve.device"]
    assert len(events) == server.metrics.batches
    assert all(event.duration_s > 0 for event in events)


# ----------------------------------------------------------------------
# Fused-plan extraction
# ----------------------------------------------------------------------
def test_fused_plan_extraction(server):
    compiled = server.compiler.compile(GEMV_SOURCE, size_hint=PARAMS)
    plan = extract_fused_gemv_plan(compiled.program, PARAMS)
    assert plan is not None
    assert (plan.array_a, plan.array_x, plan.array_y) == ("A", "x", "y")
    assert (plan.m, plan.n) == (24, 24)
    assert plan.beta == 0.0 and not plan.uploads_y
    assert stationary_operand_arrays(compiled.program) == ("A",)


def test_fused_plan_rejects_gemm(server):
    compiled = server.compiler.compile(GEMM_SOURCE, size_hint={"M": 12, "N": 12})
    assert extract_fused_gemv_plan(compiled.program, {"M": 12, "N": 12}) is None


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
def test_bad_payload_fails_without_stranding_others(server):
    """A request missing an input array resolves as FAILED; every other
    queued request — same batch or other tenants — still completes."""
    rng = np.random.default_rng(30)
    matrix = rng.random((24, 24), dtype=np.float32)
    good_before = server.submit(
        "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=0.0
    )
    broken = server.submit(
        "mallory",
        GEMV_SOURCE,
        PARAMS,
        {"A": matrix, "y": np.zeros(24, dtype=np.float32)},  # no "x"
        arrival_s=1e-5,
    )
    good_after = server.submit(
        "bob", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=2e-5
    )
    snap = server.drain()
    assert broken.status is RequestStatus.FAILED
    with pytest.raises(ServeError, match="failed"):
        broken.result()
    assert good_before.status is RequestStatus.COMPLETED
    assert good_after.status is RequestStatus.COMPLETED
    assert snap["requests"]["failed"] == 1
    assert snap["requests"]["completed"] == 2
    # The accounting partition stays exact with failures in the mix.
    checks = server.ledger.verify_partition(server.system.accelerator)
    assert all(checks.values()), checks


def test_missing_stationary_operand_fails_only_itself(server):
    """A payload missing the stationary matrix must fail its own request
    — never crash the event loop."""
    rng = np.random.default_rng(33)
    broken = server.submit(
        "mallory",
        GEMV_SOURCE,
        PARAMS,
        {"x": rng.random(24, dtype=np.float32), "y": np.zeros(24, dtype=np.float32)},
        arrival_s=0.0,
    )
    good = server.submit(
        "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=1e-5
    )
    server.drain()
    assert broken.status is RequestStatus.FAILED
    assert good.status is RequestStatus.COMPLETED


def test_bad_batch_head_does_not_fail_followers(server):
    """When the batch head has a broken payload, valid followers in the
    same batch still complete (the lease re-establishes from them)."""
    rng = np.random.default_rng(34)
    matrix = rng.random((24, 24), dtype=np.float32)
    broken = server.submit(
        "mallory",
        GEMV_SOURCE,
        PARAMS,
        {"A": matrix, "y": np.zeros(24, dtype=np.float32)},  # no "x"
        arrival_s=0.0,
    )
    followers = [
        server.submit(
            "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng, matrix), arrival_s=1e-5
        )
        for _ in range(2)
    ]
    server.drain()
    assert broken.status is RequestStatus.FAILED
    assert all(h.status is RequestStatus.COMPLETED for h in followers)
    # The followers rode the same batch as the broken head.
    assert {h.batch_id for h in followers} == {broken.batch_id}
    direct, _ = OffloadExecutor().run(
        server.compiler.compile(GEMV_SOURCE, size_hint=PARAMS).program,
        PARAMS,
        {
            "A": matrix.copy(),
            "x": followers[0].result()["x"].copy(),
            "y": np.zeros(24, dtype=np.float32),
        },
    )
    assert np.array_equal(direct["y"], followers[0].result()["y"])


def test_configured_engine_is_honoured():
    from repro.compiler import CompileOptions

    rng = np.random.default_rng(35)
    config = ServerConfig(
        compile_options=CompileOptions(engine="interpreter"), batch_window_s=0.0
    )
    with CimServer(config) as server:
        # A GEMM request takes the whole-program path, where the engine
        # actually executes host IR.
        arrays = {
            "A": rng.random((8, 8), dtype=np.float32),
            "B": rng.random((8, 8), dtype=np.float32),
            "C": np.zeros((8, 8), dtype=np.float32),
        }
        handle = server.submit("alice", GEMM_SOURCE, {"M": 8, "N": 8}, arrays)
        server.drain()
        assert handle.status is RequestStatus.COMPLETED
        assert server.executor.last_engine_used == "interpreter"


def test_bad_payload_fails_on_generic_path(server):
    rng = np.random.default_rng(31)
    broken = server.submit(
        "mallory",
        GEMM_SOURCE,
        {"M": 12, "N": 12},
        {"A": rng.random((12, 12), dtype=np.float32)},  # missing B, C
        arrival_s=0.0,
    )
    good = server.submit(
        "alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng), arrival_s=1e-5
    )
    server.drain()
    assert broken.status is RequestStatus.FAILED
    assert good.status is RequestStatus.COMPLETED
    checks = server.ledger.verify_partition(server.system.accelerator)
    assert all(checks.values()), checks


# ----------------------------------------------------------------------
# Lifecycle & misc
# ----------------------------------------------------------------------
def test_server_shutdown_releases_session():
    server = CimServer()
    rng = np.random.default_rng(15)
    server.submit("alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng))
    server.drain()
    server.shutdown()
    assert server.system.runtime.closed
    with pytest.raises(ServeError, match="shut down"):
        server.submit("alice", GEMV_SOURCE, PARAMS, _gemv_arrays(rng))
    server.shutdown()  # idempotent


def test_compile_cache_is_shared_across_tenants(server):
    rng = np.random.default_rng(16)
    for tenant in ("a", "b", "c"):
        server.submit(tenant, GEMV_SOURCE, PARAMS, _gemv_arrays(rng))
    assert server.metrics.compile_cache_misses == 1
    assert server.metrics.compile_cache_hits == 2
    server.drain()
    assert server.metrics.snapshot()["compile_cache"]["hit_rate"] == pytest.approx(
        2 / 3, abs=1e-4
    )


def test_submit_precompiled_result(server):
    rng = np.random.default_rng(17)
    compiled = server.compiler.compile(GEMV_SOURCE, size_hint=PARAMS)
    arrays = _gemv_arrays(rng)
    handle = server.submit("alice", compiled, PARAMS, arrays)
    server.drain()
    direct, _ = OffloadExecutor().run(
        compiled.program, PARAMS, {n: v.copy() for n, v in arrays.items()}
    )
    for name in direct:
        assert np.array_equal(direct[name], handle.result()[name])


def test_num_tiles_conflict_detected():
    from repro.system import CimSystem, SystemConfig

    system = CimSystem(SystemConfig(num_tiles=2))
    with pytest.raises(ServeError, match="num_tiles"):
        CimServer(ServerConfig(num_tiles=4), system=system)


def test_caller_provided_system_survives_server_shutdown():
    """Shutting the server down must not brick a system the caller owns."""
    from repro.system import CimSystem, SystemConfig

    system = CimSystem(SystemConfig())
    rng = np.random.default_rng(32)
    arrays = _gemv_arrays(rng)
    with CimServer(ServerConfig(), system=system) as server:
        handle = server.submit("alice", GEMV_SOURCE, PARAMS, arrays)
        server.drain()
        compiled = server.compiler.compile(GEMV_SOURCE, size_hint=PARAMS)
    assert not system.runtime.closed
    assert system.runtime.live_buffers == 0
    # The caller can keep using their system directly afterwards.
    direct, _ = OffloadExecutor(system).run(
        compiled, PARAMS, {n: v.copy() for n, v in arrays.items()}
    )
    assert np.array_equal(direct["y"], handle.result()["y"])


def test_deterministic_replay():
    def run_once():
        rng = np.random.default_rng(18)
        matrix = rng.random((24, 24), dtype=np.float32)
        with CimServer(ServerConfig(batch_window_s=5e-5, max_batch_size=4)) as server:
            handles = [
                server.submit(
                    f"t{i % 2}",
                    GEMV_SOURCE,
                    PARAMS,
                    _gemv_arrays(rng, matrix),
                    arrival_s=i * 2e-5,
                )
                for i in range(6)
            ]
            server.drain()
            return [
                (h.batch_id, h.completed_s, h.report.crossbar_cell_writes)
                for h in handles
            ]

    assert run_once() == run_once()

"""Tests for the TDO-CIM compiler driver, lowering, and the executor."""

import numpy as np
import pytest

from repro import CompileOptions, OffloadExecutor, TdoCimCompiler, compile_source
from repro.codegen.lowering import reassemble_program
from repro.codegen.runtime_calls import (
    CIM_DEV_TO_HOST,
    CIM_GEMM,
    CIM_GEMM_BATCHED,
    CIM_GEMV,
    CIM_HOST_TO_DEV,
    CIM_INIT,
    CIM_MALLOC,
)
from repro.frontend import parse_program
from repro.ir import Interpreter, to_source
from repro.ir.stmt import CallStmt, Loop
from repro.poly import detect_scops
from repro.system import CimSystem, SystemConfig


# ----------------------------------------------------------------------
# Compiler driver
# ----------------------------------------------------------------------
def test_compiled_gemm_matches_listing_1_structure(gemm_source):
    result = compile_source(gemm_source)
    text = to_source(result.program)
    assert "polly_cimInit(0);" in text
    assert text.count("polly_cimMalloc") == 3
    assert "polly_cimBlasSGemm(CimNoTrans, CimNoTrans, M, N, K, &alpha" in text
    assert "polly_cimDevToHost(cim_C, C" in text
    # The original loop nest is gone.
    assert "for (int k" not in text


def test_report_records_decisions(gemm_source):
    result = compile_source(gemm_source)
    report = result.report
    assert report.scop_count == 1
    assert report.detected_kernels == 1
    assert report.offloaded_kernels == 1
    assert report.runtime_calls_emitted == [CIM_GEMM]
    assert "offloaded" in report.summary()


def test_offload_disabled_keeps_program_intact(gemm_source):
    result = compile_source(gemm_source, options=CompileOptions.host_only())
    assert not result.offloaded
    assert result.report.offloaded_kernels == 0
    text = to_source(result.program)
    assert "polly_cim" not in text


def test_kind_filtering(gemv_source):
    options = CompileOptions(offload_kinds=("gemm",))
    result = compile_source(gemv_source, options=options)
    assert result.report.offloaded_kernels == 0
    assert any("excluded" in d.reason for d in result.report.decisions)


def test_selective_offloading_skips_low_intensity(gemv_source, gemm_source):
    options = CompileOptions.selective(threshold=32.0)
    gemv_result = compile_source(
        gemv_source, options=options, size_hint={"M": 64, "N": 64}
    )
    assert gemv_result.report.offloaded_kernels == 0
    assert any("intensity" in d.reason for d in gemv_result.report.decisions)
    gemm_result = compile_source(
        gemm_source,
        options=options,
        size_hint={"M": 64, "N": 64, "K": 64, "alpha": 1.0, "beta": 1.0},
    )
    assert gemm_result.report.offloaded_kernels == 1


def test_fusion_emits_batched_call(two_gemms_source):
    result = compile_source(two_gemms_source)
    assert result.report.runtime_calls_emitted == [CIM_GEMM_BATCHED]
    assert result.report.fusion_groups and len(result.report.fusion_groups[0]) == 2
    text = to_source(result.program)
    assert "polly_cimBlasGemmBatched" in text


def test_fusion_disabled_emits_two_calls(two_gemms_source):
    result = compile_source(two_gemms_source, options=CompileOptions(enable_fusion=False))
    assert result.report.runtime_calls_emitted == [CIM_GEMM, CIM_GEMM]


def test_non_offloadable_program_unchanged():
    source = """
    void stencil(int N, float A[N], float B[N]) {
      for (int i = 1; i < N - 1; i++)
        A[i] = B[i - 1] + B[i] + B[i + 1];
    }
    """
    result = compile_source(source)
    assert result.report.detected_kernels == 0
    assert not result.offloaded
    assert "polly_cim" not in to_source(result.program)


def test_compiling_an_ir_program_directly(gemm_program):
    result = TdoCimCompiler().compile(gemm_program)
    assert result.report.offloaded_kernels == 1


# ----------------------------------------------------------------------
# Lowering / reassembly
# ----------------------------------------------------------------------
def test_reassemble_preserves_non_scop_statements(gemm_source):
    program = parse_program(gemm_source)
    scop = detect_scops(program)[0]
    replacement = [CallStmt("replacement_call", [])]
    compiled = reassemble_program(program, [(scop, replacement)], add_init_call=True)
    callees = [s.callee for s in compiled.body.stmts if isinstance(s, CallStmt)]
    assert callees == [CIM_INIT, "replacement_call"]
    assert compiled.name == program.name + "_cim"
    assert compiled.params == program.params


def test_reassemble_rejects_foreign_scop(gemm_source, gemv_source):
    program_a = parse_program(gemm_source)
    program_b = parse_program(gemv_source)
    scop_b = detect_scops(program_b)[0]
    with pytest.raises(ValueError):
        reassemble_program(program_a, [(scop_b, [])])


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def test_executor_gemm_correctness_and_report(gemm_source, rng):
    result = compile_source(gemm_source)
    params = {"M": 24, "N": 20, "K": 18, "alpha": 1.5, "beta": 0.5}
    arrays = {
        "A": rng.random((24, 18), dtype=np.float32),
        "B": rng.random((18, 20), dtype=np.float32),
        "C": rng.random((24, 20), dtype=np.float32),
    }
    executor = OffloadExecutor()
    outputs, report = executor.run(result.program, params, arrays)
    reference = Interpreter(result.source_program).run(params, arrays)
    np.testing.assert_allclose(outputs["C"], reference["C"], rtol=1e-4)
    assert report.offloaded
    assert report.gemv_count == 20
    assert report.crossbar_cell_writes == 24 * 18
    assert report.accelerator_macs == 24 * 20 * 18
    assert report.macs_per_cim_write == pytest.approx(20.0)
    assert report.total_energy_j > 0 and report.total_time_s > 0
    assert report.edp == pytest.approx(report.total_energy_j * report.total_time_s)
    assert CIM_HOST_TO_DEV in report.runtime_calls
    assert CIM_DEV_TO_HOST in report.runtime_calls


def test_executor_offload_overhead_is_positive(gemm_source, rng):
    result = compile_source(gemm_source)
    params = {"M": 8, "N": 8, "K": 8, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((8, 8), dtype=np.float32),
        "B": rng.random((8, 8), dtype=np.float32),
        "C": np.zeros((8, 8), dtype=np.float32),
    }
    _, report = OffloadExecutor().run(result.program, params, arrays)
    assert report.offload_instructions > 0
    assert report.offload_energy_j > 0
    assert report.offload_time_s >= report.accelerator_time_s


def test_executor_host_only_program_reports_no_accelerator_use(gemm_source, rng):
    result = compile_source(gemm_source, options=CompileOptions.host_only())
    params = {"M": 6, "N": 6, "K": 6, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((6, 6), dtype=np.float32),
        "B": rng.random((6, 6), dtype=np.float32),
        "C": np.zeros((6, 6), dtype=np.float32),
    }
    outputs, report = OffloadExecutor().run(result.program, params, arrays)
    assert not report.offloaded
    assert report.accelerator_energy_j == 0
    assert report.host_estimate.instructions > 0
    reference = Interpreter(result.source_program).run(params, arrays)
    np.testing.assert_allclose(outputs["C"], reference["C"], rtol=1e-5)


def test_executor_quantized_system_accuracy(gemm_source, rng):
    result = compile_source(gemm_source)
    params = {"M": 16, "N": 16, "K": 16, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((16, 16), dtype=np.float32),
        "B": rng.random((16, 16), dtype=np.float32),
        "C": np.zeros((16, 16), dtype=np.float32),
    }
    system = CimSystem(SystemConfig.quantized())
    outputs, _ = OffloadExecutor(system).run(result.program, params, arrays)
    reference = Interpreter(result.source_program).run(params, arrays)
    rel = np.abs(outputs["C"] - reference["C"]) / np.abs(reference["C"]).max()
    assert rel.max() < 0.05


def test_executor_batched_gemm_writes_shared_operand_once(two_gemms_source, rng):
    fused = compile_source(two_gemms_source)
    unfused = compile_source(two_gemms_source, options=CompileOptions(enable_fusion=False))
    n = 20
    params = {"N": n}
    arrays = {
        "A": rng.random((n, n), dtype=np.float32),
        "B": rng.random((n, n), dtype=np.float32),
        "E": rng.random((n, n), dtype=np.float32),
        "C": np.zeros((n, n), dtype=np.float32),
        "D": np.zeros((n, n), dtype=np.float32),
    }
    _, fused_report = OffloadExecutor().run(fused.program, params, arrays)
    _, unfused_report = OffloadExecutor().run(unfused.program, params, arrays)
    assert fused_report.crossbar_cell_writes == n * n
    assert unfused_report.crossbar_cell_writes == 2 * n * n
    ref = Interpreter(fused.source_program).run(params, arrays)
    out, _ = OffloadExecutor().run(fused.program, params, arrays)
    np.testing.assert_allclose(out["C"], ref["C"], rtol=1e-4)
    np.testing.assert_allclose(out["D"], ref["D"], rtol=1e-4)

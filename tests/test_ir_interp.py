"""Tests for the IR interpreter (functional semantics + operation counting)."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.ir import Interpreter
from repro.ir.interp import InterpreterError, evaluate_expr
from repro.ir.expr import BinOp, IntConst, Min, Max, ParamRef, UnaryOp, VarRef


def test_evaluate_expr_arithmetic():
    expr = BinOp("+", BinOp("*", IntConst(3), ParamRef("N")), UnaryOp("-", VarRef("i")))
    assert evaluate_expr(expr, {"N": 4, "i": 2}, {}) == 10


def test_evaluate_min_max():
    expr = Min(VarRef("a"), Max(VarRef("b"), IntConst(5)))
    assert evaluate_expr(expr, {"a": 7, "b": 1}, {}) == 5


def test_evaluate_unbound_variable_raises():
    with pytest.raises(InterpreterError):
        evaluate_expr(VarRef("missing"), {}, {})


def test_gemm_interpretation_matches_numpy(gemm_program, rng):
    params = {"M": 5, "N": 4, "K": 3, "alpha": 2.0, "beta": 0.5}
    arrays = {
        "A": rng.random((5, 3), dtype=np.float32),
        "B": rng.random((3, 4), dtype=np.float32),
        "C": rng.random((5, 4), dtype=np.float32),
    }
    out = Interpreter(gemm_program).run(params, arrays)
    ref = 0.5 * arrays["C"].astype(np.float64) + 2.0 * (
        arrays["A"].astype(np.float64) @ arrays["B"].astype(np.float64)
    )
    np.testing.assert_allclose(out["C"], ref, rtol=1e-5)


def test_input_arrays_are_not_mutated(gemm_program, rng):
    params = {"M": 3, "N": 3, "K": 3, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((3, 3), dtype=np.float32),
        "B": rng.random((3, 3), dtype=np.float32),
        "C": rng.random((3, 3), dtype=np.float32),
    }
    before = arrays["C"].copy()
    Interpreter(gemm_program).run(params, arrays)
    np.testing.assert_array_equal(arrays["C"], before)


def test_missing_parameter_raises(gemm_program):
    with pytest.raises(InterpreterError):
        Interpreter(gemm_program).run({"M": 2, "N": 2})


def test_wrong_shape_raises(gemm_program, rng):
    params = {"M": 3, "N": 3, "K": 3, "alpha": 1.0, "beta": 0.0}
    arrays = {
        "A": rng.random((2, 3), dtype=np.float32),
        "B": rng.random((3, 3), dtype=np.float32),
        "C": rng.random((3, 3), dtype=np.float32),
    }
    with pytest.raises(InterpreterError):
        Interpreter(gemm_program).run(params, arrays)


def test_allocate_arrays_used_when_not_provided(gemm_program):
    params = {"M": 2, "N": 2, "K": 2, "alpha": 1.0, "beta": 0.0}
    out = Interpreter(gemm_program).run(params)
    assert out["C"].shape == (2, 2)
    np.testing.assert_array_equal(out["C"], np.zeros((2, 2)))


def test_trace_counts_iterations_and_flops(gemm_program):
    params = {"M": 2, "N": 3, "K": 4, "alpha": 1.0, "beta": 0.0}
    interp = Interpreter(gemm_program)
    interp.run(params)
    trace = interp.trace
    # i, j, and k loop iterations: 2 + 2*3 + 2*3*4 = 32
    assert trace.loop_iterations == 2 + 2 * 3 + 2 * 3 * 4
    # statements executed: init (2*3) + update (2*3*4)
    assert trace.statements_executed == 6 + 24
    assert trace.flops > 0 and trace.loads > 0 and trace.stores > 0


def test_call_without_handler_raises():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i++)
        A[i] = 0.0;
    }
    """
    program = parse_program(source)
    from repro.ir.stmt import CallStmt

    program.body.append(CallStmt("polly_cimInit", [0]))
    with pytest.raises(InterpreterError):
        Interpreter(program).run({"N": 2})


def test_call_handler_receives_arguments():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i++)
        A[i] = 1.0;
    }
    """
    program = parse_program(source)
    from repro.ir.stmt import CallStmt

    program.body.append(CallStmt("custom_call", ["A", 42]))
    seen = []

    def handler(name, args, interp):
        seen.append((name, tuple(args)))

    Interpreter(program, call_handler=handler).run({"N": 2})
    assert seen == [("custom_call", ("A", 42))]

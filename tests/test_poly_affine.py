"""Tests for affine-expression analysis."""

import pytest

from repro.frontend import parse_program
from repro.ir.expr import ArrayRef, BinOp, IntConst, ParamRef, VarRef
from repro.poly.affine import AffineExpr, affine_from_expr

LOOPS = {"i", "j", "k"}
PARAMS = {"N", "M"}


def test_single_variable():
    affine = affine_from_expr(VarRef("i"), LOOPS, PARAMS)
    assert affine == AffineExpr.var("i")


def test_sum_of_variable_and_constant():
    expr = BinOp("+", VarRef("i"), IntConst(3))
    affine = affine_from_expr(expr, LOOPS, PARAMS)
    assert affine.coeff("i") == 1
    assert affine.constant == 3


def test_scaled_parameter():
    expr = BinOp("*", IntConst(2), ParamRef("N"))
    affine = affine_from_expr(expr, LOOPS, PARAMS)
    assert affine.param_coeff("N") == 2


def test_difference_of_variables():
    expr = BinOp("-", VarRef("i"), VarRef("j"))
    affine = affine_from_expr(expr, LOOPS, PARAMS)
    assert affine.coeff("i") == 1 and affine.coeff("j") == -1


def test_product_of_variables_is_not_affine():
    expr = BinOp("*", VarRef("i"), VarRef("j"))
    assert affine_from_expr(expr, LOOPS, PARAMS) is None


def test_array_access_is_not_affine():
    expr = ArrayRef("A", [VarRef("i")])
    assert affine_from_expr(expr, LOOPS, PARAMS) is None


def test_unknown_identifier_is_not_affine():
    assert affine_from_expr(VarRef("q"), LOOPS, PARAMS) is None


def test_division_is_not_affine():
    expr = BinOp("/", VarRef("i"), IntConst(2))
    assert affine_from_expr(expr, LOOPS, PARAMS) is None


def test_arithmetic_on_affine_expressions():
    a = AffineExpr.var("i") + AffineExpr.param("N") * 2 + 1
    b = AffineExpr.var("i") * 3 - 4
    total = a + b
    assert total.coeff("i") == 4
    assert total.param_coeff("N") == 2
    assert total.constant == -3


def test_substitute_and_rename():
    expr = AffineExpr.var("i") * 2 + AffineExpr.var("j")
    substituted = expr.substitute_var("i", AffineExpr.var("ii") + 1)
    assert substituted.coeff("ii") == 2
    assert substituted.constant == 2
    renamed = expr.rename_var("j", "jj")
    assert renamed.coeff("jj") == 1 and renamed.coeff("j") == 0


def test_evaluate():
    expr = AffineExpr.from_parts({"i": 2}, {"N": 1}, 3)
    assert expr.evaluate({"i": 5, "N": 7}) == 20


def test_to_ir_roundtrip():
    expr = AffineExpr.from_parts({"i": 2, "j": -1}, {"N": 1}, 5)
    back = affine_from_expr(expr.to_ir(), {"i", "j"}, {"N"})
    assert back == expr


def test_zero_coefficients_are_dropped():
    expr = AffineExpr.from_parts({"i": 0, "j": 1}, {}, 0)
    assert expr.used_vars() == {"j"}


def test_equality_is_structural():
    a = AffineExpr.var("i") + 1
    b = AffineExpr.from_parts({"i": 1}, {}, 1)
    assert a == b

"""Tests for the PCM device array and the crossbar model."""

import numpy as np
import pytest

from repro.hw.crossbar import Crossbar, CrossbarConfig
from repro.hw.pcm import PCMCellArray, PCMDeviceParams


# ----------------------------------------------------------------------
# PCM cell array
# ----------------------------------------------------------------------
def test_pcm_program_and_read_back():
    array = PCMCellArray(4, 4)
    levels = np.arange(16).reshape(4, 4) % 16
    array.program(levels)
    np.testing.assert_array_equal(array.read(), levels)


def test_pcm_partial_block_programming():
    array = PCMCellArray(8, 8)
    block = np.full((2, 3), 5)
    array.program(block, row_offset=2, col_offset=4)
    np.testing.assert_array_equal(array.read(2, 4, 2, 3), block)
    assert array.read(0, 0, 2, 3).sum() == 0


def test_pcm_wear_counts_only_changes_by_default():
    array = PCMCellArray(2, 2)
    levels = np.array([[1, 1], [1, 1]])
    changed_first = array.program(levels)
    changed_second = array.program(levels)
    assert changed_first == 4 and changed_second == 0
    assert array.max_cell_writes == 1


def test_pcm_count_unchanged_forces_wear():
    array = PCMCellArray(2, 2)
    levels = np.zeros((2, 2), dtype=int)
    array.program(levels, count_unchanged=True)
    array.program(levels, count_unchanged=True)
    assert array.max_cell_writes == 2


def test_pcm_rejects_out_of_range_levels():
    array = PCMCellArray(2, 2, PCMDeviceParams(bits=4))
    with pytest.raises(ValueError):
        array.program(np.full((2, 2), 16))


def test_pcm_rejects_out_of_bounds_block():
    array = PCMCellArray(2, 2)
    with pytest.raises(ValueError):
        array.program(np.zeros((3, 3), dtype=int))


def test_pcm_conductance_mapping_monotonic():
    params = PCMDeviceParams(bits=4)
    levels = np.arange(16)
    conductances = params.level_to_conductance(levels)
    assert np.all(np.diff(conductances) > 0)
    np.testing.assert_array_equal(params.conductance_to_level(conductances), levels)


def test_worn_out_fraction():
    array = PCMCellArray(2, 2, PCMDeviceParams(endurance_cycles=2))
    ones = np.ones((2, 2), dtype=int)
    zeros = np.zeros((2, 2), dtype=int)
    for _ in range(2):
        array.program(ones, count_unchanged=True)
    assert array.worn_out_fraction() == 1.0
    array.reset_wear()
    assert array.worn_out_fraction() == 0.0


# ----------------------------------------------------------------------
# Crossbar
# ----------------------------------------------------------------------
def test_ideal_gemv_is_exact(rng):
    xbar = Crossbar(CrossbarConfig(rows=16, cols=12, mode="ideal"))
    matrix = rng.standard_normal((16, 12))
    xbar.write(matrix)
    x = rng.standard_normal(16)
    result, report = xbar.gemv(x)
    np.testing.assert_allclose(result, x @ matrix, rtol=1e-12)
    assert report.macs == 16 * 12


def test_quantized_gemv_error_is_bounded(rng):
    xbar = Crossbar(CrossbarConfig(rows=32, cols=32, mode="quantized"))
    matrix = rng.random((32, 32))
    xbar.write(matrix)
    x = rng.random(32)
    result, _ = xbar.gemv(x)
    reference = x @ matrix
    rel_error = np.abs(result - reference) / np.maximum(np.abs(reference), 1e-9)
    assert rel_error.max() < 0.05


def test_quantized_gemv_handles_negative_values(rng):
    xbar = Crossbar(CrossbarConfig(rows=16, cols=16, mode="quantized"))
    matrix = rng.standard_normal((16, 16))
    xbar.write(matrix)
    x = rng.standard_normal(16)
    result, _ = xbar.gemv(x)
    reference = x @ matrix
    assert np.abs(result - reference).max() < 0.05 * np.abs(reference).max() + 0.05


def test_stored_quantised_close_to_values(rng):
    xbar = Crossbar(CrossbarConfig(rows=8, cols=8, mode="quantized"))
    matrix = rng.random((8, 8))
    xbar.write(matrix)
    np.testing.assert_allclose(xbar.stored_quantised(), matrix, atol=matrix.max() / 100)


def test_partial_write_and_active_subarray(rng):
    xbar = Crossbar(CrossbarConfig(rows=16, cols=16, mode="ideal"))
    block = rng.random((4, 6))
    report = xbar.write(block)
    assert report.rows_touched == 4
    assert report.cells_targeted == 24
    x = rng.random(4)
    result, gemv_report = xbar.gemv(x, rows_active=4, cols_active=6)
    np.testing.assert_allclose(result, x @ block, rtol=1e-12)
    assert gemv_report.macs == 24


def test_write_out_of_bounds_rejected():
    xbar = Crossbar(CrossbarConfig(rows=4, cols=4))
    with pytest.raises(ValueError):
        xbar.write(np.zeros((5, 5)))


def test_gemv_wrong_vector_length_rejected():
    xbar = Crossbar(CrossbarConfig(rows=4, cols=4))
    xbar.write(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        xbar.gemv(np.zeros(3))


def test_wear_accumulates_per_logical_cell():
    xbar = Crossbar(CrossbarConfig(rows=4, cols=4))
    xbar.write(np.ones((4, 4)))
    xbar.write(np.ones((4, 4)) * 2)
    assert xbar.max_cell_writes == 2
    assert xbar.total_cell_writes == 32
    assert xbar.write_counts().max() == 2


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        CrossbarConfig(mode="analogish")

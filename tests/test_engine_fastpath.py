"""Differential tests for the fast-path lowering tiers (PR 8).

Every newly lowered nest shape — shifted, reversed and strided reads,
broadcasts, multi-reduction conv windows, outer-product reductions — is
executed under every engine tier and must match the reference
interpreter *bit for bit*: result arrays, :class:`ExecutionTrace`
operation counts, and (through the trace) all derived accounting.
Shapes the fold or native tier cannot prove must fall back a tier, never
diverge; a hypothesis strategy generates random affine nests to enforce
the same contract on shapes nobody thought to write down.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.frontend import parse_program
from repro.ir import Interpreter
from repro.ir.engine import make_engine, native_available
from repro.ir.engine.lowering import program_lowering_report, tier_histogram
from repro.ir.normalize import normalize_reductions
from repro.workloads.polybench import KERNELS

#: engines that must be bit-identical to the interpreter (trace included).
EXACT_ENGINES = ("vectorized", "fast", "native")


def _prepare(source: str):
    return normalize_reductions(parse_program(source))


def _run_reference(program, params, arrays):
    interp = Interpreter(program)
    out = interp.run(params, {k: v.copy() for k, v in arrays.items()})
    return out, interp.trace


def _assert_engines_match(source: str, params: dict, arrays: dict) -> None:
    """Run *source* under every exact engine; all must match the interpreter."""
    program = _prepare(source)
    ref_out, ref_trace = _run_reference(program, params, arrays)
    for engine_name in EXACT_ENGINES:
        engine = make_engine(program, engine=engine_name)
        out = engine.run(params, {k: v.copy() for k, v in arrays.items()})
        for name in ref_out:
            np.testing.assert_array_equal(
                ref_out[name],
                out[name],
                err_msg=f"{engine_name}: array {name!r} not bit-identical",
            )
        assert engine.trace == ref_trace, f"{engine_name}: trace diverged"


def _arrays(rng, **shapes):
    return {name: rng.random(shape) for name, shape in shapes.items()}


# ----------------------------------------------------------------------
# Per-shape differentials: every newly lowered nest shape
# ----------------------------------------------------------------------
SHIFTED_READ = """
void shift(int N, double A[N], double B[N]) {
  for (int i = 1; i < N; i++)
    B[i] = A[i - 1];
}
"""

WRAPPING_READ = """
void wrap(int N, double A[N], double B[N]) {
  for (int i = 0; i < N; i++)
    B[i] = A[i - 1];
}
"""

REVERSED_READ = """
void rev(int N, double A[N], double B[N]) {
  for (int i = 0; i < N; i++)
    B[i] = A[N - 1 - i];
}
"""

STRIDED_READ = """
void strided(int N, double A[2 * N], double B[N]) {
  for (int i = 0; i < N; i++)
    B[i] = A[2 * i];
}
"""

BROADCAST_READ = """
void bcast(int N, int M, double x[M], double A[N][M]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < M; j++)
      A[i][j] = x[j] * 2.0;
}
"""

CONV_WINDOW = """
void conv(int OH, int OW, int KH, int KW,
          double in[OH + KH][OW + KW], double w[KH][KW],
          double out[OH][OW]) {
  for (int oh = 0; oh < OH; oh++)
    for (int ow = 0; ow < OW; ow++)
      for (int kh = 0; kh < KH; kh++)
        for (int kw = 0; kw < KW; kw++)
          out[oh][ow] = out[oh][ow] + in[oh + kh][ow + kw] * w[kh][kw];
}
"""

OUTER_REDUCTION = """
void bicg_like(int N, int M, double A[N][M], double s[M], double q[N],
               double p[M], double r[N]) {
  for (int j = 0; j < M; j++)
    s[j] = 0.0;
  for (int i = 0; i < N; i++) {
    q[i] = 0.0;
    for (int j = 0; j < M; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
"""

PRODUCT_REDUCTION = """
void prod(int N, double A[N], double out[1]) {
  for (int i = 0; i < N; i++)
    out[0] = out[0] * A[i];
}
"""

DIAGONAL_READ = """
void diag(int N, double A[N][N], double B[N]) {
  for (int i = 0; i < N; i++)
    B[i] = A[i][i];
}
"""


def test_shifted_read_matches():
    rng = np.random.default_rng(0)
    _assert_engines_match(SHIFTED_READ, {"N": 9}, _arrays(rng, A=9, B=9))


def test_wrapping_read_matches_interpreter_wrap_semantics():
    """``A[i - 1]`` from ``i = 0`` indexes ``A[-1]`` — Python wrap
    semantics.  The fold tier must bail at runtime and reproduce the
    interpreter's wrap exactly, not produce a shifted slice."""
    rng = np.random.default_rng(1)
    arrays = _arrays(rng, A=7, B=7)
    _assert_engines_match(WRAPPING_READ, {"N": 7}, arrays)
    # Sanity: the wrap actually happened (B[0] took A[-1]).
    program = _prepare(WRAPPING_READ)
    out, _ = _run_reference(program, {"N": 7}, arrays)
    assert out["B"][0] == arrays["A"][-1]


def test_reversed_read_matches():
    rng = np.random.default_rng(2)
    _assert_engines_match(REVERSED_READ, {"N": 11}, _arrays(rng, A=11, B=11))


def test_strided_read_matches():
    rng = np.random.default_rng(3)
    _assert_engines_match(STRIDED_READ, {"N": 8}, _arrays(rng, A=16, B=8))


def test_broadcast_read_matches():
    rng = np.random.default_rng(4)
    _assert_engines_match(
        BROADCAST_READ, {"N": 5, "M": 7}, _arrays(rng, x=7, A=(5, 7))
    )


def test_conv_window_multi_reduction_matches():
    rng = np.random.default_rng(5)
    params = {"OH": 6, "OW": 5, "KH": 3, "KW": 2}
    _assert_engines_match(
        CONV_WINDOW,
        params,
        _arrays(rng, **{"in": (9, 7), "w": (3, 2), "out": (6, 5)}),
    )


def test_outer_reduction_pair_matches():
    rng = np.random.default_rng(6)
    _assert_engines_match(
        OUTER_REDUCTION,
        {"N": 6, "M": 4},
        _arrays(rng, A=(6, 4), s=4, q=6, p=4, r=6),
    )


def test_product_reduction_falls_back_and_matches():
    rng = np.random.default_rng(7)
    _assert_engines_match(PRODUCT_REDUCTION, {"N": 6}, _arrays(rng, A=6, out=1))


def test_diagonal_read_falls_back_and_matches():
    rng = np.random.default_rng(8)
    _assert_engines_match(DIAGONAL_READ, {"N": 6}, _arrays(rng, A=(6, 6), B=6))


# ----------------------------------------------------------------------
# The per-nest lowering report: tiers and reasons
# ----------------------------------------------------------------------
def test_lowering_report_tiers_and_reasons():
    expectations = {
        SHIFTED_READ: ("fold", ""),
        REVERSED_READ: ("fold", ""),
        STRIDED_READ: ("fold", ""),
        BROADCAST_READ: ("fold", ""),
    }
    for source, (tier, reason) in expectations.items():
        report = program_lowering_report(_prepare(source), native=False)
        assert [nest.tier for nest in report] == [tier]
        assert report[0].reason == reason

    # Fallback shapes explain *why* they stayed on the slow path.
    diag = program_lowering_report(_prepare(DIAGONAL_READ), native=False)
    assert diag[0].tier == "vectorized"
    assert "diagonal" in diag[0].reason

    prod = program_lowering_report(_prepare(PRODUCT_REDUCTION), native=False)
    assert prod[0].tier == "interpreter"
    assert prod[0].reason  # non-empty explanation


def test_lowering_report_native_tier():
    report = program_lowering_report(_prepare(SHIFTED_READ), native=True)
    assert [nest.tier for nest in report] == ["native"]
    # The generated C source is kept for inspection.
    assert "for" in report[0].c_source
    hist = tier_histogram(report)
    assert hist["native"] == 1


def test_compilation_report_carries_lowerings():
    result = compile_source(
        KERNELS["mvt"].source, options=CompileOptions.host_only()
    )
    lowerings = result.report.nest_lowerings
    assert lowerings, "EngineLowerPass did not attach a lowering report"
    summary = result.report.lowering_summary()
    assert "fold" in summary


def test_polybench_lowering_coverage_gate():
    """>= 90% of PolyBench nests must land past the generic vectorized
    tier — the same gate BENCH_PR8.json enforces, kept in the test suite
    so a lowering regression fails fast without running benchmarks."""
    totals = {"interpreter": 0, "vectorized": 0, "fold": 0, "native": 0}
    for name in sorted(KERNELS):
        report = program_lowering_report(_prepare(KERNELS[name].source))
        for tier, count in tier_histogram(report).items():
            totals[tier] += count
    nests = sum(totals.values())
    assert (totals["fold"] + totals["native"]) / nests >= 0.9


# ----------------------------------------------------------------------
# PolyBench differentials under the new default and the native backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
@pytest.mark.parametrize("engine_name", ["fast", "native"])
def test_polybench_fastpath_is_bit_identical(kernel_name, engine_name):
    kernel = KERNELS[kernel_name]
    program = _prepare(kernel.source)
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=17)
    ref_out, ref_trace = _run_reference(program, params, arrays)
    engine = make_engine(program, engine=engine_name)
    out = engine.run(params, {k: v.copy() for k, v in arrays.items()})
    for name in ref_out:
        np.testing.assert_array_equal(ref_out[name], out[name])
    assert engine.trace == ref_trace


# ----------------------------------------------------------------------
# Native backend: availability gating and fallback
# ----------------------------------------------------------------------
def test_repro_native_env_disables_backend(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert not native_available()
    # engine="native" stays requestable: it degrades to the fold tier.
    rng = np.random.default_rng(9)
    arrays = _arrays(rng, A=9, B=9)
    program = _prepare(SHIFTED_READ)
    ref_out, ref_trace = _run_reference(program, {"N": 9}, arrays)
    engine = make_engine(program, engine="native")
    out = engine.run({"N": 9}, {k: v.copy() for k, v in arrays.items()})
    np.testing.assert_array_equal(ref_out["B"], out["B"])
    assert engine.trace == ref_trace


def test_native_toolchain_is_available_in_ci():
    """The dedicated CI job installs cffi + gcc; if this environment has
    them, prove the probe sees them (the differential tests above then
    genuinely exercised compiled C)."""
    import shutil

    try:
        import cffi  # noqa: F401
    except ImportError:
        pytest.skip("cffi not installed")
    if not any(shutil.which(cc) for cc in ("cc", "gcc", "clang")):
        pytest.skip("no C compiler on PATH")
    assert native_available()


# ----------------------------------------------------------------------
# Hypothesis: random affine nests must never miscompile
# ----------------------------------------------------------------------
@st.composite
def affine_nests(draw):
    """A random single-statement affine nest over 1-D arrays.

    Subscripts are ``coeff * i + offset`` with coefficients in {1, 2} and
    offsets in [-1, 2]; arrays are sized ``3 * N`` so every index is
    either in bounds or a negative wrap — both *defined* behaviors every
    engine must reproduce exactly.
    """
    n = draw(st.integers(2, 5))
    coeff = draw(st.sampled_from([1, 2]))
    offset = draw(st.integers(-1, 2))
    read_coeff = draw(st.sampled_from([1, 2]))
    read_offset = draw(st.integers(-1, 2))
    op = draw(st.sampled_from(["+", "*", "-"]))
    scale = draw(st.sampled_from(["1.0", "0.5", "3.0"]))
    reduce_form = draw(st.booleans())
    write = f"B[{coeff} * i + {offset + 1}]"
    read = f"A[{read_coeff} * i + {read_offset}]"
    if reduce_form:
        body = f"{write} = {write} {op} {read} * {scale};"
    else:
        body = f"{write} = {read} {op} {scale};"
    source = (
        "void k(int N, double A[3 * N], double B[3 * N]) {\n"
        f"  for (int i = 0; i < N; i++)\n"
        f"    {body}\n"
        "}\n"
    )
    return source, n


@given(affine_nests())
@settings(max_examples=60, deadline=None)
def test_random_affine_nests_never_miscompile(case):
    source, n = case
    rng = np.random.default_rng(n)
    arrays = _arrays(rng, A=3 * n, B=3 * n)
    _assert_engines_match(source, {"N": n}, arrays)

"""Tests for the host cost model, cache model, CPU model, bus, and memory."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.host import ArmA7Core, CacheConfig, CacheModel, HostCostModel, HostCPU
from repro.host.cache import default_host_hierarchy
from repro.ir import Interpreter
from repro.ir.normalize import normalize_reductions
from repro.system import CimSystem, SystemConfig
from repro.system.bus import BusError, SystemBus
from repro.system.memory import MemoryAccessError, SharedMemory


# ----------------------------------------------------------------------
# Host cost model
# ----------------------------------------------------------------------
def test_analytic_estimate_matches_interpreter_trace(gemm_program):
    params = {"M": 6, "N": 5, "K": 4, "alpha": 1.5, "beta": 0.5}
    model = HostCostModel(assume_register_promotion=False)
    analytic = model.estimate_program(gemm_program, params)
    interp = Interpreter(gemm_program)
    interp.run(params)
    measured = model.estimate_trace(interp.trace)
    # The two estimates count the same classes of operations; allow a small
    # relative slack for loop-control bookkeeping differences.
    assert analytic.instructions == pytest.approx(measured.instructions, rel=0.10)
    assert analytic.flops == pytest.approx(measured.flops, rel=0.05)
    assert analytic.loads == pytest.approx(measured.loads, rel=0.05)
    assert analytic.stores == pytest.approx(measured.stores, rel=0.05)


def test_register_promotion_reduces_memory_traffic(gemm_program):
    params = {"M": 8, "N": 8, "K": 8, "alpha": 1.0, "beta": 1.0}
    with_promo = HostCostModel(assume_register_promotion=True).estimate_program(
        gemm_program, params
    )
    without_promo = HostCostModel(assume_register_promotion=False).estimate_program(
        gemm_program, params
    )
    assert with_promo.loads < without_promo.loads
    assert with_promo.stores < without_promo.stores
    assert with_promo.instructions < without_promo.instructions


def test_estimate_scales_with_problem_size(gemm_program):
    model = HostCostModel()
    small = model.estimate_program(gemm_program, {"M": 8, "N": 8, "K": 8,
                                                  "alpha": 1.0, "beta": 1.0})
    large = model.estimate_program(gemm_program, {"M": 16, "N": 16, "K": 16,
                                                  "alpha": 1.0, "beta": 1.0})
    assert large.instructions == pytest.approx(8 * small.instructions, rel=0.15)


def test_energy_and_time_derived_from_instructions(gemm_program):
    model = HostCostModel()
    estimate = model.estimate_program(
        gemm_program, {"M": 4, "N": 4, "K": 4, "alpha": 1.0, "beta": 1.0}
    )
    assert estimate.energy_j == pytest.approx(
        estimate.instructions * model.model.energy_per_instruction_j
    )
    assert estimate.time_s == pytest.approx(
        estimate.instructions / model.model.frequency_hz
    )


def test_empty_loop_contributes_nothing():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i++)
        A[i] = 0.0;
    }
    """
    program = parse_program(source)
    estimate = HostCostModel().estimate_program(program, {"N": 0})
    assert estimate.instructions == 0


# ----------------------------------------------------------------------
# Cache model
# ----------------------------------------------------------------------
def test_cache_hit_after_miss():
    cache = CacheModel(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
    assert cache.access(0) is False
    assert cache.access(32) is True  # same line
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_cache_eviction_lru():
    cache = CacheModel(CacheConfig(size_bytes=2 * 64, line_bytes=64, associativity=2))
    # Single set with 2 ways: three distinct lines mapping to the same set.
    cache.access(0)
    cache.access(64)
    cache.access(128)
    assert cache.stats.evictions == 1
    assert cache.access(0) is False  # evicted


def test_cache_flush_range_counts_lines():
    cache = CacheModel(CacheConfig(size_bytes=4096, line_bytes=64, associativity=4))
    for address in range(0, 640, 64):
        cache.access(address, is_write=True)
    flushed = cache.flush_range(0, 640)
    assert flushed == 10
    assert cache.stats.writebacks == 10


def test_default_hierarchy_has_two_levels():
    l1 = default_host_hierarchy()
    assert l1.next_level is not None
    l1.access(0)
    assert l1.next_level.stats.accesses == 1


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=64, associativity=3)


# ----------------------------------------------------------------------
# CPU model
# ----------------------------------------------------------------------
def test_core_execute_accounting():
    core = ArmA7Core()
    time_s, energy_j = core.execute(1.2e9)
    assert time_s == pytest.approx(1.0)
    assert energy_j == pytest.approx(1.2e9 * 128e-12)
    assert core.retired_instructions == 1.2e9
    with pytest.raises(ValueError):
        core.execute(-1)


def test_host_cpu_has_two_cores():
    cpu = HostCPU()
    assert len(cpu.cores) == 2
    cpu.core0.execute(100)
    assert cpu.total_retired_instructions() == 100


# ----------------------------------------------------------------------
# Shared memory and bus
# ----------------------------------------------------------------------
def test_memory_read_write_roundtrip():
    memory = SharedMemory(1024 * 1024, 512 * 1024)
    payload = bytes(range(100))
    memory.write(1000, payload)
    assert memory.read(1000, 100) == payload
    assert memory.bytes_written == 100 and memory.bytes_read == 100


def test_memory_typed_array_helpers(rng):
    memory = SharedMemory(1024 * 1024, 512 * 1024)
    data = rng.random((8, 8), dtype=np.float32)
    memory.write_array(4096, data)
    np.testing.assert_array_equal(memory.read_array(4096, 64).reshape(8, 8), data)


def test_memory_out_of_range_access_rejected():
    memory = SharedMemory(4096, 1024)
    with pytest.raises(MemoryAccessError):
        memory.read(4000, 200)
    with pytest.raises(MemoryAccessError):
        memory.write(-4, b"1234")


def test_memory_regions_partition_space():
    memory = SharedMemory(1024 * 1024, 256 * 1024)
    assert memory.regions["system"].size + memory.cma_region.size == memory.size_bytes
    assert memory.cma_region.contains(memory.cma_region.base, 1)


def test_bus_routes_pmio_to_accelerator(system):
    bus = system.bus
    window = system.pmio_window
    from repro.hw.context_regs import Register

    address = bus.register_address(window, Register.DIM_M)
    bus.pmio_write(address, 17)
    assert bus.pmio_read(address) == 17
    assert bus.pmio_writes == 1 and bus.pmio_reads == 1


def test_bus_unmapped_address_rejected():
    bus = SystemBus()
    with pytest.raises(BusError):
        bus.pmio_read(0x1234)


# ----------------------------------------------------------------------
# System assembly
# ----------------------------------------------------------------------
def test_system_default_configuration_is_table_i(system):
    assert system.config.cim.crossbar_rows == 256
    assert system.crossbar.config.rows == 256
    assert system.config.crossbar_mode == "ideal"
    assert "256x256" in repr(system)


def test_system_reset_stats(system, rng):
    system.runtime.cim_init(0)
    data = rng.random((8, 8), dtype=np.float32)
    buffer = system.runtime.cim_malloc(data.nbytes)
    system.runtime.cim_host_to_dev(buffer, data)
    assert system.host_overhead.instructions > 0
    system.reset_stats()
    assert system.host_overhead.instructions == 0
    assert system.accelerator.total_energy_j() == 0


def test_quantized_configuration():
    system = CimSystem(SystemConfig.quantized())
    assert system.crossbar.config.mode == "quantized"

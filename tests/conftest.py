"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.ir.normalize import normalize_reductions
from repro.poly import build_schedule_tree, detect_scops
from repro.system import CimSystem, SystemConfig

GEMM_SOURCE = """
void gemm(int M, int N, int K, float alpha, float beta,
          float C[M][N], float A[M][K], float B[K][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++) {
      C[i][j] = beta * C[i][j];
      for (int k = 0; k < K; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
"""

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

TWO_GEMMS_SHARED_A_SOURCE = """
void two_gemms(int N, float C[N][N], float D[N][N],
               float A[N][N], float B[N][N], float E[N][N]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        D[i][j] += A[i][k] * E[k][j];
}
"""

CONV_SOURCE = """
void conv2d(int OH, int OW, int KH, int KW, float alpha,
            float out[OH][OW], float img[OH + KH - 1][OW + KW - 1],
            float W[KH][KW]) {
  for (int i = 0; i < OH; i++)
    for (int j = 0; j < OW; j++) {
      out[i][j] = 0.0;
      for (int p = 0; p < KH; p++)
        for (int q = 0; q < KW; q++)
          out[i][j] += alpha * W[p][q] * img[i + p][j + q];
    }
}
"""


@pytest.fixture
def gemm_source() -> str:
    return GEMM_SOURCE


@pytest.fixture
def gemv_source() -> str:
    return GEMV_SOURCE


@pytest.fixture
def conv_source() -> str:
    return CONV_SOURCE


@pytest.fixture
def two_gemms_source() -> str:
    return TWO_GEMMS_SHARED_A_SOURCE


@pytest.fixture
def gemm_program():
    return normalize_reductions(parse_program(GEMM_SOURCE))


@pytest.fixture
def gemm_scop(gemm_program):
    scops = detect_scops(gemm_program)
    assert len(scops) == 1
    return scops[0]


@pytest.fixture
def gemm_tree(gemm_scop):
    return build_schedule_tree(gemm_scop)


@pytest.fixture
def small_system() -> CimSystem:
    """A small-memory system so allocation-failure paths are reachable."""
    return CimSystem(SystemConfig(memory_bytes=8 * 1024 * 1024, cma_bytes=4 * 1024 * 1024))


@pytest.fixture
def system() -> CimSystem:
    return CimSystem()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_gemm_arrays(rng, m, n, k):
    return {
        "A": rng.random((m, k), dtype=np.float32),
        "B": rng.random((k, n), dtype=np.float32),
        "C": rng.random((m, n), dtype=np.float32),
    }

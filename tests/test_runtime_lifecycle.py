"""Regression tests for the CIM runtime lifecycle (PR 4 satellite).

Covers ``cim_shutdown``, the context-manager protocol, and the exact
failure modes of ``cim_free`` (double free vs unknown handle vs stale
object) — all of which the serving layer relies on to recycle device
buffers between tenant requests without corrupting the handle table.
"""

from __future__ import annotations

import pytest

from repro.driver.driver import DriverError
from repro.runtime.errors import CimRuntimeError
from repro.system import CimSystem


@pytest.fixture
def runtime():
    system = CimSystem()
    system.runtime.cim_init()
    return system.runtime


def test_shutdown_releases_outstanding_buffers(runtime):
    buffers = [runtime.cim_malloc(256) for _ in range(4)]
    assert runtime.live_buffers == 4
    runtime.cim_shutdown()
    assert runtime.live_buffers == 0
    assert runtime.closed
    # The driver-side CMA region is fully coalesced again.
    assert runtime.driver.cma.live_allocations == 0
    # The released buffers are genuinely gone: the driver rejects them.
    with pytest.raises(DriverError):
        runtime.driver.buffer_size(buffers[0].virtual)


def test_shutdown_is_idempotent(runtime):
    runtime.cim_malloc(64)
    runtime.cim_shutdown()
    runtime.cim_shutdown()
    assert runtime.closed


def test_api_after_shutdown_raises(runtime):
    buffer = runtime.cim_malloc(64)
    runtime.cim_shutdown()
    with pytest.raises(CimRuntimeError, match="shut down"):
        runtime.cim_malloc(64)
    with pytest.raises(CimRuntimeError, match="shut down"):
        runtime.cim_free(buffer)
    with pytest.raises(CimRuntimeError, match="shut down"):
        runtime.cim_init()


def test_context_manager_initialises_and_shuts_down():
    system = CimSystem()
    with system.runtime as runtime:
        buffer = runtime.cim_malloc(128)
        assert buffer.size >= 128
        assert runtime.live_buffers == 1
    assert system.runtime.closed
    assert system.runtime.live_buffers == 0


def test_context_manager_releases_on_exception():
    system = CimSystem()
    with pytest.raises(RuntimeError, match="boom"):
        with system.runtime as runtime:
            runtime.cim_malloc(128)
            raise RuntimeError("boom")
    assert system.runtime.closed
    assert system.runtime.live_buffers == 0


def test_double_free_raises_clear_error(runtime):
    buffer = runtime.cim_malloc(64)
    runtime.cim_free(buffer)
    with pytest.raises(CimRuntimeError, match="double free of buffer"):
        runtime.cim_free(buffer)


def test_double_free_does_not_corrupt_handle_table(runtime):
    first = runtime.cim_malloc(64)
    second = runtime.cim_malloc(64)
    runtime.cim_free(first)
    with pytest.raises(CimRuntimeError, match="double free"):
        runtime.cim_free(first)
    # The surviving buffer is untouched and still usable.
    assert runtime.live_buffers == 1
    assert runtime.buffer(second.handle) is second
    runtime.cim_free(second)
    assert runtime.live_buffers == 0


def test_free_of_foreign_buffer_reports_unknown(runtime):
    other_system = CimSystem()
    other_system.runtime.cim_init()
    foreign = other_system.runtime.cim_malloc(64)
    # A handle this runtime never issued is "unknown", not a double free.
    with pytest.raises(CimRuntimeError, match="unknown buffer"):
        runtime.cim_free(foreign)


def test_free_all_then_double_free(runtime):
    buffer = runtime.cim_malloc(64)
    runtime.free_all()
    with pytest.raises(CimRuntimeError, match="double free"):
        runtime.cim_free(buffer)


def test_freed_addresses_are_recycled_deterministically(runtime):
    """Back-to-back alloc/free cycles land on identical addresses — the
    property the serving layer's crossbar-residency reuse depends on."""
    layout = []
    for _ in range(3):
        buffers = [runtime.cim_malloc(n) for n in (4096, 256, 128)]
        layout.append(tuple(b.physical for b in buffers))
        runtime.free_all()
    assert layout[0] == layout[1] == layout[2]

"""The gateway's headline gate: wall-clock vs VirtualClock, bit-exact (PR 9).

Drives the golden serving trace through both modes and requires
bit-identical responses, usage, bills and accounting — plus coverage of
the diff machinery itself (a perturbed run must be caught, a fleet trace
must be refused) and the ``repro gateway`` CLI entrypoints.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main as repro_main
from repro.gateway.differential import (
    BILL_FIELDS,
    DIFF_SECTIONS,
    diff_runs,
    gateway_config_from_trace,
    reference_run,
    run_differential,
)
from repro.trace.schema import TraceFormatError, load_trace

GOLDEN = "tests/traces/serve_multitenant.jsonl"
FLEET = "tests/traces/fleet_faultstorm.jsonl"


@pytest.fixture(scope="module")
def golden_trace():
    return load_trace(GOLDEN)


@pytest.fixture(scope="module")
def differential(golden_trace):
    """One full differential, shared across this module's assertions."""
    return run_differential(golden_trace, num_workers=2)


class TestDifferential:
    def test_modes_are_bit_identical(self, differential):
        assert differential.identical, differential.diff.summary()
        assert differential.num_requests == 12
        assert "identical" in differential.diff.summary()

    def test_both_partitions_reconcile(self, differential):
        assert all(differential.reference.partition.values())
        assert all(differential.gateway.partition.values())

    def test_usage_and_bills_are_populated(self, differential):
        # The diff passing must not be vacuous: completed requests were
        # billed in both modes, with every compared field present.
        assert differential.reference.usage
        assert differential.reference.usage.keys() == differential.gateway.usage.keys()
        for tenant, bill in differential.reference.tenant_bills.items():
            assert set(BILL_FIELDS) <= set(bill), tenant
        assert differential.reference.tenant_bills.keys() == {
            "acme",
            "free-tier",
            "globex",
        }

    def test_perturbed_usage_is_caught(self, golden_trace, differential):
        tampered = copy.deepcopy(differential.gateway)
        rid = next(iter(tampered.usage))
        tampered.usage[rid]["accelerator_energy_j"] *= 1.0 + 1e-15
        diff = diff_runs(golden_trace, differential.reference, tampered)
        assert not diff.identical
        assert any("accelerator_energy_j" in m for m in diff.mismatches["usage"])

    def test_perturbed_result_bytes_are_caught(self, golden_trace, differential):
        tampered = copy.deepcopy(differential.gateway)
        rid = next(
            rid
            for rid, response in tampered.responses.items()
            if response["status"] == "completed" and response["result"]
        )
        name = next(iter(tampered.responses[rid]["result"]))
        tampered.responses[rid]["result"][name] = (
            tampered.responses[rid]["result"][name] + 1
        )
        diff = diff_runs(golden_trace, differential.reference, tampered)
        assert not diff.identical
        assert diff.mismatches["responses"]  # the mode-vs-mode leg
        assert diff.mismatches["recorded_responses"]  # the recording leg

    def test_missing_request_is_caught(self, golden_trace, differential):
        tampered = copy.deepcopy(differential.gateway)
        rid = next(iter(tampered.responses))
        del tampered.responses[rid]
        diff = diff_runs(golden_trace, differential.reference, tampered)
        assert any(
            f"request {rid}" in m for m in diff.mismatches["responses"]
        )

    def test_sections_are_stable(self):
        assert DIFF_SECTIONS == (
            "responses",
            "usage",
            "tenant_bills",
            "accounting",
            "recorded_responses",
        )


class TestTraceGating:
    def test_fleet_trace_refused(self):
        fleet = load_trace(FLEET)
        with pytest.raises(TraceFormatError, match="'serve' trace"):
            reference_run(fleet)
        with pytest.raises(TraceFormatError, match="'serve' trace"):
            gateway_config_from_trace(fleet)

    def test_config_mirrors_the_recording(self, golden_trace):
        config = gateway_config_from_trace(golden_trace, num_workers=3)
        assert config.num_workers == 3
        assert config.num_tiles == int(golden_trace.config.get("num_tiles", 1))
        assert config.max_pending is None  # quotas off in diff mode


class TestCli:
    def test_repro_gateway_diff(self, capsys):
        assert repro_main(["gateway", "--diff", GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "bit-for-bit" in out

    def test_repro_gateway_loadgen(self, capsys, tmp_path):
        output = tmp_path / "report.json"
        code = repro_main(
            [
                "gateway",
                "--requests", "16",
                "--rate", "400",
                "--workers", "2",
                "--output", str(output),
            ]
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert report["offered"] == 16
        assert report["completed"] == 16
        assert report["partition_ok"] is True
        assert report["interrupted"] is False
        assert "p50" in capsys.readouterr().out

    def test_repro_gateway_trace_arrivals_need_a_trace(self, capsys):
        assert repro_main(["gateway", "--arrivals", "trace"]) == 2

    def test_repro_bench_lists_gateway(self, capsys):
        assert repro_main(["bench", "--list"]) == 0
        assert "bench_gateway_wallclock.py" in capsys.readouterr().out

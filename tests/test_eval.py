"""Tests for the evaluation harness (metrics, Figure 5, Figure 6, Table I)."""

import math

import pytest

from repro.eval import (
    evaluate_kernel,
    figure5,
    figure5_simulated,
    figure6,
    format_figure5,
    format_figure6,
    format_table,
    geometric_mean,
    improvement_factor,
    table1_rows,
)
from repro.eval.metrics import edp, signed_log_improvement
from repro.eval.tables import format_table1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_geometric_mean_basic():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([5.0]) == pytest.approx(5.0)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -2.0])


def test_improvement_factor_direction():
    assert improvement_factor(10.0, 2.0) == pytest.approx(5.0)
    assert improvement_factor(2.0, 10.0) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        improvement_factor(0.0, 1.0)


def test_signed_log_improvement():
    assert signed_log_improvement(4.0) == pytest.approx(4.0)
    assert signed_log_improvement(0.25) == pytest.approx(-4.0)
    with pytest.raises(ValueError):
        signed_log_improvement(0.0)


def test_edp():
    assert edp(2.0, 3.0) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        edp(-1.0, 1.0)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def test_table1_render():
    text = format_table1()
    assert "256x256" in text
    assert "Arm-A7" in text
    rows = table1_rows()
    assert len(rows) >= 10


def test_format_table_alignment():
    text = format_table([("a", 1), ("bbb", 22)], headers=("col1", "col2"))
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def test_figure5_projection_shape():
    data = figure5()
    assert data.mode == "projected"
    assert data.lifetime_improvement == pytest.approx(2.0)
    naive_curve = data.naive_curve()
    smart_curve = data.smart_curve()
    assert len(naive_curve) == len(data.endurance_points)
    # Lifetime grows linearly with endurance.
    assert naive_curve[-1][1] == pytest.approx(
        naive_curve[0][1] * data.endurance_points[-1] / data.endurance_points[0]
    )
    # Smart mapping doubles the lifetime at every endurance point.
    for (_, naive_years), (_, smart_years) in zip(naive_curve, smart_curve):
        assert smart_years == pytest.approx(2 * naive_years)
    # The projected range is in the right ballpark (years, not hours).
    assert 1.0 < naive_curve[0][1] < 100.0
    assert "Figure 5" in format_figure5(data)


def test_figure5_simulated_write_counts():
    data = figure5_simulated(matrix_size=24)
    assert data.mode == "simulated"
    # Fusion halves the crossbar write volume (A written once instead of twice).
    assert data.write_volume_ratio == pytest.approx(2.0)
    assert data.lifetime_improvement == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def figure6_small():
    return figure6(dataset="SMALL")


def test_figure6_covers_all_paper_kernels(figure6_small):
    assert [row.kernel for row in figure6_small.rows] == [
        "2mm", "3mm", "gemm", "conv", "gesummv", "bicg", "mvt",
    ]


def test_figure6_gemm_like_kernels_win(figure6_small):
    for row in figure6_small.rows:
        if row.category == "gemm-like":
            assert row.energy_improvement > 1.0, row.kernel
            assert row.edp_improvement > 1.0, row.kernel
            assert row.macs_per_cim_write > 10.0, row.kernel


def test_figure6_gemv_like_kernels_lose_edp(figure6_small):
    for row in figure6_small.rows:
        if row.category == "gemv-like":
            assert row.edp_improvement < 1.0, row.kernel
            assert row.runtime_improvement < 1.0, row.kernel
            assert row.macs_per_cim_write == pytest.approx(1.0)


def test_figure6_selective_geomean_exceeds_overall(figure6_small):
    assert figure6_small.selective_energy_geomean > figure6_small.energy_geomean
    assert figure6_small.energy_geomean > 1.0


def test_figure6_report_rendering(figure6_small):
    text = format_figure6(figure6_small)
    assert "Selective Geomean" in text
    assert "EDP improvement" in text
    for kernel in ("gemm", "mvt"):
        assert kernel in text


def test_figure6_row_lookup(figure6_small):
    row = figure6_small.row("gemm")
    assert row.kernel == "gemm"
    with pytest.raises(KeyError):
        figure6_small.row("unknown")


def test_evaluate_kernel_verification_path():
    evaluation = evaluate_kernel("gemm", dataset="MINI", verify=True)
    assert evaluation.kernel == "gemm"
    assert evaluation.compilation.report.offloaded_kernels == 1

"""Tests for the gateway's resilience layer (PR 10 tentpole).

Deadlines, the hang watchdog, self-healing respawn/quarantine/hot-spare
recovery, wall-clock per-tenant admission, the defensive collector, and
the monitor/retry late-frame race.  These spawn real worker processes
and measure real time, so counts and timeouts are kept small.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway import AsyncGateway, GatewayConfig
from repro.gateway.loadgen import synthetic_gemv_workload
from repro.gateway.wire import WireFormatError
from repro.serve.admission import TenantQuota


def run(coroutine):
    return asyncio.run(coroutine)


def submit_item(gateway, item, fault=None, deadline_s=None):
    return gateway.submit_nowait(
        item.tenant,
        item.source,
        item.params,
        item.arrays,
        fault=fault,
        deadline_s=deadline_s,
    )


async def wait_for(predicate, timeout_s=5.0, interval_s=0.02):
    """Poll *predicate* on the loop until true or the timeout expires."""
    waited = 0.0
    while not predicate():
        if waited >= timeout_s:
            raise AssertionError("condition not reached within timeout")
        await asyncio.sleep(interval_s)
        waited += interval_s


class TestDeadlines:
    def test_deadline_already_passed_is_shed(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=11)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                response = await submit_item(
                    gateway, workload(0), deadline_s=gateway.clock.now_s - 1.0
                )
                await gateway.drain()
                return response, gateway.metrics, gateway.ledger

        response, metrics, ledger = run(scenario())
        assert response.status == "deadline-exceeded"
        assert "shed" in response.reason
        assert metrics.deadline_shed == 1
        # Never dispatched: no usage, no compensation, nothing billed.
        assert not list(ledger.all_usages())
        assert not ledger.compensations

    def test_deadline_expires_in_flight_and_work_is_compensated(self):
        """A slow worker blows through the request's deadline: the caller
        gets deadline-exceeded promptly, and the worker's late result is
        absorbed as a measured compensation — real physical work, never
        billed to the tenant."""
        workload = synthetic_gemv_workload(num_tenants=1, seed=12)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                response = await submit_item(
                    gateway,
                    workload(0),
                    fault="slow:0.5",
                    deadline_s=gateway.clock.now_s + 0.15,
                )
                resolved_s = gateway.clock.now_s
                await gateway.drain()
                return response, resolved_s, gateway

        response, resolved_s, gateway = run(scenario())
        assert response.status == "deadline-exceeded"
        assert "expired in flight" in response.reason
        # Resolved at expiry, not after the 0.5 s stall finished.
        assert resolved_s < 0.45
        assert gateway.metrics.deadline_expired == 1
        # The tenant was never billed; the measured work landed as a
        # deadline-exceeded compensation and the partition stays exact.
        assert not list(gateway.ledger.all_usages())
        comps = [
            c for c in gateway.ledger.compensations
            if c.op == "deadline-exceeded"
        ]
        assert len(comps) == 1
        assert comps[0].accelerator_energy_j > 0.0
        assert comps[0].batch_id > 0
        assert all(gateway.verify_partition().values())


class TestHangWatchdog:
    def test_wedged_worker_is_killed_and_request_retried(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=13)

        async def scenario():
            config = GatewayConfig(num_workers=2, hang_timeout_s=0.3)
            async with AsyncGateway(config) as gateway:
                response = await submit_item(gateway, workload(0), fault="hang")
                await gateway.drain()
                return response, gateway

        response, gateway = run(scenario())
        assert response.status == "completed"
        assert response.attempt == 2
        assert gateway.metrics.hangs_detected == 1
        comps = [
            c for c in gateway.ledger.compensations if c.op == "worker-hang"
        ]
        assert len(comps) == 1
        assert comps[0].accelerator_energy_j == 0.0
        assert "hang_timeout_s" in comps[0].reason
        # Exactly-once billing despite the kill + retry.
        usages = [
            u for u in gateway.ledger.all_usages()
            if u.request_id == response.request_id
        ]
        assert len(usages) == 1
        assert all(gateway.verify_partition().values())

    def test_watchdog_off_by_default(self):
        assert GatewayConfig().hang_timeout_s is None


class TestSelfHealing:
    def test_dead_worker_respawns_and_pool_recovers(self):
        """With a respawn budget, losing the only worker is transient:
        the killed request retries on the respawned incarnation."""
        workload = synthetic_gemv_workload(num_tenants=1, seed=14)

        async def scenario():
            config = GatewayConfig(
                num_workers=1,
                max_respawns=2,
                respawn_backoff_base_s=0.05,
            )
            async with AsyncGateway(config) as gateway:
                first = await submit_item(
                    gateway, workload(0), fault="die-mid-request"
                )
                second = await submit_item(gateway, workload(1))
                await gateway.drain()
                return first, second, gateway

        first, second, gateway = run(scenario())
        assert first.status == "completed"
        assert first.attempt == 2
        assert second.status == "completed"
        assert gateway.metrics.respawns == 1
        assert len(gateway.alive_workers) == 1
        # Both incarnations reconcile in the partition.
        assert len(gateway._workers) == 2
        assert all(gateway.verify_partition().values())

    def test_respawn_backoff_is_capped_exponential(self):
        config = GatewayConfig(
            max_respawns=10,
            respawn_backoff_base_s=0.1,
            respawn_backoff_max_s=0.4,
        )
        backoffs = [
            min(
                config.respawn_backoff_base_s * 2 ** (n - 1),
                config.respawn_backoff_max_s,
            )
            for n in range(1, 6)
        ]
        assert backoffs == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_crash_looping_slot_is_quarantined(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=15)

        async def scenario():
            config = GatewayConfig(
                num_workers=1,
                max_respawns=1,
                respawn_backoff_base_s=0.05,
            )
            async with AsyncGateway(config) as gateway:
                first = await submit_item(
                    gateway, workload(0), fault="die-mid-request"
                )
                # The respawned worker dies too: budget exhausted, the
                # slot quarantines, and with no recovery path left the
                # retry fails out.
                second = await submit_item(
                    gateway, workload(1), fault="die-mid-request"
                )
                snapshot = gateway.snapshot()
                await gateway.drain()
                return first, second, snapshot, gateway

        first, second, snapshot, gateway = run(scenario())
        assert first.status == "completed"
        assert second.status == "failed"
        assert "no surviving gateway workers" in second.reason
        assert gateway.metrics.slots_quarantined == 1
        assert snapshot["gateway"]["quarantined_slots"] == 1
        assert all(gateway.verify_partition().values())

    def test_hot_spare_promotion_is_immediate(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=16)

        async def scenario():
            config = GatewayConfig(num_workers=1, hot_spares=1)
            async with AsyncGateway(config) as gateway:
                spares_before = len(gateway._spare_ids)
                response = await submit_item(
                    gateway, workload(0), fault="die-mid-request"
                )
                await gateway.drain()
                return spares_before, response, gateway

        spares_before, response, gateway = run(scenario())
        assert spares_before == 1
        # No respawn budget, yet the pool recovered: the spare took over.
        assert response.status == "completed"
        assert response.attempt == 2
        assert gateway.metrics.spares_promoted == 1
        assert gateway.metrics.respawns == 0
        assert len(gateway.alive_workers) == 1
        assert all(gateway.verify_partition().values())


class TestWallClockAdmission:
    def test_per_tenant_queue_depth_shedding(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=17)

        async def scenario():
            config = GatewayConfig(
                num_workers=1,
                default_quota=TenantQuota(max_queue_depth=1),
            )
            async with AsyncGateway(config) as gateway:
                # Burst without yielding: 1 dispatches, 1 queues, the
                # rest shed against the tenant's depth quota.
                futures = [
                    submit_item(gateway, workload(index)) for index in range(5)
                ]
                responses = await asyncio.gather(*futures)
                await gateway.drain()
                return responses, gateway.ledger

        responses, ledger = run(scenario())
        statuses = [r.status for r in responses]
        assert statuses.count("completed") == 2
        assert statuses.count("rejected") == 3
        rejected = next(r for r in responses if r.status == "rejected")
        assert "tenant queue full" in rejected.reason
        assert ledger.account("tenant-0").rejected == 3

    def test_energy_quota_exhaustion(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=18)

        async def scenario():
            gateway = AsyncGateway(GatewayConfig(num_workers=1))
            async with gateway:
                gateway.set_quota(
                    "tenant-0", TenantQuota(energy_budget_j=1e-30)
                )
                first = await submit_item(gateway, workload(0))
                second = await submit_item(gateway, workload(1))
                await gateway.drain()
                return first, second

        first, second = run(scenario())
        # The first request is admitted (nothing spent yet) and bills
        # energy past the tiny budget; the second is shed.
        assert first.status == "completed"
        assert second.status == "rejected"
        assert "energy quota exhausted" in second.reason

    def test_unknown_fault_marker_rejected_at_submit(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=19)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                with pytest.raises(WireFormatError, match="unknown fault"):
                    submit_item(gateway, workload(0), fault="explode")
                await gateway.drain()

        run(scenario())


class TestDefensiveCollector:
    def test_corrupt_frame_fails_only_that_request(self):
        """Saboteur worker: an undecodable response frame fails its own
        request with a typed reason, kills the byzantine worker, and
        leaves the collector, the other requests and the accounting
        partition intact."""
        workload = synthetic_gemv_workload(num_tenants=2, seed=20)

        async def scenario():
            config = GatewayConfig(num_workers=2)
            async with AsyncGateway(config) as gateway:
                futures = [
                    submit_item(
                        gateway,
                        workload(index),
                        fault="corrupt-frame" if index == 1 else None,
                    )
                    for index in range(6)
                ]
                responses = await asyncio.gather(*futures)
                await gateway.drain()
                return responses, gateway

        responses, gateway = run(scenario())
        statuses = [r.status for r in responses]
        assert statuses[1] == "failed"
        assert "corrupt response frame" in responses[1].reason
        assert statuses.count("completed") == 5
        assert gateway.metrics.corrupt_frames == 1
        comps = [
            c for c in gateway.ledger.compensations if c.op == "corrupt-frame"
        ]
        assert len(comps) == 1
        # The saboteur was killed (its unaccountable work died with it)
        # and the partition reconciles on its last good snapshot.
        assert len(gateway.alive_workers) == 1
        assert not list(
            u for u in gateway.ledger.all_usages() if u.request_id == 2
        )
        assert all(gateway.verify_partition().values())


class TestLateFrameRace:
    def test_late_frame_from_dead_worker_is_ignored(self):
        """The monitor/retry race: a worker is declared dead while its
        response frame is already on the queue.  The late frame must be
        ignored — absorbing its usage or physical snapshot would bill
        twice and corrupt the partition."""
        workload = synthetic_gemv_workload(num_tenants=1, seed=21)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=2)) as gateway:
                future = submit_item(gateway, workload(0), fault="slow:0.3")
                await wait_for(lambda: gateway._inflight)
                worker_id = next(iter(gateway._inflight))
                worker = gateway._workers[worker_id]
                # Declare the worker dead while it is still serving: its
                # response frame will land *after* the death handling —
                # exactly the race the monitor can lose.
                gateway._on_worker_death(worker)
                response = await future
                await wait_for(
                    lambda: gateway.metrics.late_frames_ignored == 1
                )
                # The zombie process is still alive (the death was a
                # simulation); reap it so drain doesn't wait on it.  The
                # fenced kill matters even here: the frame just received
                # may still have the worker's feeder inside the queue's
                # shared write-lock critical section.
                gateway._fenced_kill(worker.process)
                await gateway.drain()
                return worker_id, response, gateway

        worker_id, response, gateway = run(scenario())
        assert response.status == "completed"
        assert response.attempt == 2
        assert response.worker_id != worker_id
        assert gateway.metrics.late_frames_ignored == 1
        # Billed exactly once — by the retry, never by the late frame.
        usages = [
            u for u in gateway.ledger.all_usages()
            if u.request_id == response.request_id
        ]
        assert len(usages) == 1
        assert usages[0].device_id != worker_id
        assert all(gateway.verify_partition().values())


class TestDrainEscalation:
    def test_drain_kills_worker_that_never_acknowledges(self, monkeypatch):
        """A worker wedged at drain time: the drained-event wait times
        out, the worker is killed, and close() returns instead of
        hanging — no zombie processes survive."""
        import repro.gateway.server as server_mod
        from repro.gateway.wire import GatewayRequest
        from repro.gateway.worker import REQUEST_FRAME

        monkeypatch.setattr(server_mod, "_DRAIN_TIMEOUT_S", 0.5)
        workload = synthetic_gemv_workload(num_tenants=1, seed=22)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                response = await submit_item(gateway, workload(0))
                # Wedge the worker behind the gateway's back: a raw hang
                # frame with no flight registered, so the gateway believes
                # the worker is idle and drain must discover the wedge.
                item = workload(0)
                rogue = GatewayRequest(
                    request_id=999,
                    tenant=item.tenant,
                    source=item.source,
                    params=dict(item.params),
                    arrays=dict(item.arrays),
                    fault="hang",
                )
                worker = gateway._workers[0]
                worker.request_queue.put((REQUEST_FRAME, rogue.to_json()))
                await asyncio.sleep(0.2)
                await gateway.drain()
                return response, worker

        response, worker = run(scenario())
        assert response.status == "completed"
        assert worker.dead
        assert not worker.process.is_alive()

"""Unit tests for IR statements."""

import pytest

from repro.ir.expr import ArrayRef, IntConst, ParamRef, VarRef
from repro.ir.stmt import (
    Assign,
    Block,
    CallStmt,
    IfStmt,
    Loop,
    assignments_in,
    loops_in,
    perfectly_nested_loops,
)


def _loop(var, upper, body):
    return Loop(var=var, lower=IntConst(0), upper=upper, body=body)


def test_assign_reads_and_writes_for_plain_assignment():
    stmt = Assign(
        target=ArrayRef("C", [VarRef("i")]),
        rhs=ArrayRef("A", [VarRef("i")]),
    )
    assert [r.name for r in stmt.reads()] == ["A"]
    assert [w.name for w in stmt.writes()] == ["C"]


def test_reduction_target_is_also_read():
    stmt = Assign(
        target=ArrayRef("C", [VarRef("i")]),
        rhs=ArrayRef("A", [VarRef("i")]),
        reduction="+",
    )
    read_names = sorted(r.name for r in stmt.reads())
    assert read_names == ["A", "C"]


def test_statement_names_are_unique():
    a = Assign(target=ArrayRef("X", [IntConst(0)]), rhs=IntConst(1))
    b = Assign(target=ArrayRef("X", [IntConst(0)]), rhs=IntConst(2))
    assert a.name != b.name


def test_loop_requires_block_body():
    with pytest.raises(TypeError):
        Loop(var="i", lower=IntConst(0), upper=IntConst(4), body=Assign(
            target=ArrayRef("X", [VarRef("i")]), rhs=IntConst(0)))


def test_loop_step_must_be_positive_integer():
    with pytest.raises(ValueError):
        Loop(var="i", lower=IntConst(0), upper=IntConst(4), body=Block(), step=0)
    with pytest.raises(TypeError):
        Loop(var="i", lower=IntConst(0), upper=IntConst(4), body=Block(),
             step=IntConst(2))


def test_loops_in_and_assignments_in():
    inner = Assign(target=ArrayRef("A", [VarRef("i"), VarRef("j")]), rhs=IntConst(0))
    nest = _loop("i", ParamRef("N"), Block([_loop("j", ParamRef("M"), Block([inner]))]))
    assert len(loops_in(nest)) == 2
    assert assignments_in(nest) == [inner]


def test_perfectly_nested_loops_detection():
    inner = Assign(target=ArrayRef("A", [VarRef("i"), VarRef("j")]), rhs=IntConst(0))
    j_loop = _loop("j", ParamRef("M"), Block([inner]))
    i_loop = _loop("i", ParamRef("N"), Block([j_loop]))
    chain = perfectly_nested_loops(i_loop)
    assert [l.var for l in chain] == ["i", "j"]


def test_imperfect_nest_stops_chain():
    inner = Assign(target=ArrayRef("A", [VarRef("i")]), rhs=IntConst(0))
    j_loop = _loop("j", ParamRef("M"), Block([inner]))
    i_loop = _loop("i", ParamRef("N"), Block([inner, j_loop]))
    chain = perfectly_nested_loops(i_loop)
    assert [l.var for l in chain] == ["i"]


def test_call_stmt_renders_arguments():
    stmt = CallStmt("polly_cimInit", [0])
    assert "polly_cimInit(0)" in str(stmt)


def test_if_stmt_children():
    cond = VarRef("flag")
    then = Block([Assign(target=ArrayRef("A", [IntConst(0)]), rhs=IntConst(1))])
    other = Block([Assign(target=ArrayRef("A", [IntConst(0)]), rhs=IntConst(2))])
    stmt = IfStmt(cond, then, other)
    assert len(stmt.children_stmts()) == 2
    assert len(list(stmt.walk())) == 5

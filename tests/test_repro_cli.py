"""Tests for the ``repro`` CLI (PR 7 tentpole surface).

Drives :func:`repro.cli.main` in-process with explicit argv — the same
code path as the installed ``repro`` console script and the
``python -m repro.cli`` form CI uses.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import BENCHMARKS, main, repo_root
from repro.trace import load_trace


# ----------------------------------------------------------------------
# repro serve / replay / diff — the record/replay loop end to end
# ----------------------------------------------------------------------
def test_serve_records_a_loadable_trace(tmp_path, capsys):
    path = tmp_path / "serve.jsonl"
    assert main(["serve", "--scenario", "serve_multitenant", "--record", str(path)]) == 0
    out = capsys.readouterr().out
    assert "tenant bills:" in out
    assert "device bills:" in out
    trace = load_trace(path)
    assert trace.kind == "serve"
    assert trace.submissions()


def test_replay_of_recorded_trace_passes(tmp_path, capsys):
    path = tmp_path / "fleet.jsonl"
    assert main(["serve", "--scenario", "fleet_faultstorm", "--record", str(path)]) == 0
    capsys.readouterr()
    assert main(["replay", str(path)]) == 0
    assert "matches the recording" in capsys.readouterr().out
    assert main(["replay", str(path), "--diff"]) == 0
    assert "identical" in capsys.readouterr().out


def test_replay_save_roundtrips(tmp_path, capsys):
    recorded = tmp_path / "a.jsonl"
    replayed = tmp_path / "b.jsonl"
    assert main(["serve", "--record", str(recorded)]) == 0
    assert main(["replay", str(recorded), "--save", str(replayed)]) == 0
    capsys.readouterr()
    assert main(["diff", str(recorded), str(replayed)]) == 0
    assert "identical" in capsys.readouterr().out


def test_diff_detects_a_mismatch(tmp_path, capsys):
    left = tmp_path / "left.jsonl"
    right = tmp_path / "right.jsonl"
    assert main(["serve", "--record", str(left)]) == 0
    # Different seed -> different payloads and bills.
    assert main(["serve", "--seed", "7", "--record", str(right)]) == 0
    capsys.readouterr()
    assert main(["diff", str(left), str(right)]) == 1
    assert "traces differ" in capsys.readouterr().out


def test_replay_rejects_bad_trace_with_exit_2(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"event":"header","schema_version":99,"kind":"serve","config":{}}\n')
    assert main(["replay", str(path)]) == 2
    assert "unsupported schema_version" in capsys.readouterr().err


def test_replay_rejects_truncated_trace_with_exit_2(tmp_path, capsys):
    source = tmp_path / "full.jsonl"
    assert main(["serve", "--record", str(source)]) == 0
    text = source.read_text()
    truncated = tmp_path / "cut.jsonl"
    truncated.write_text(text[: len(text) // 2])
    capsys.readouterr()
    assert main(["replay", str(truncated)]) == 2
    assert "bad trace" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------
def test_run_lists_kernels(capsys):
    assert main(["run", "--list"]) == 0
    names = capsys.readouterr().out.split()
    assert "gemm" in names and "atax" in names


def test_run_evaluates_a_kernel(capsys):
    assert main(["run", "gemm", "--dataset", "MINI", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "energy improvement" in out
    assert "results match the NumPy reference" in out


def test_run_unknown_kernel_is_usage_error(capsys):
    assert main(["run", "warpcore", "--dataset", "MINI"]) == 2
    assert "warpcore" in capsys.readouterr().err


def test_run_without_kernel_is_usage_error(capsys):
    assert main(["run"]) == 2


# ----------------------------------------------------------------------
# repro bench
# ----------------------------------------------------------------------
def test_bench_list_names_real_scripts(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    root = repo_root()
    for name, script in BENCHMARKS.items():
        assert name in out
        assert (root / "benchmarks" / script).exists(), script


def test_bench_unknown_name_is_usage_error(capsys):
    assert main(["bench", "warpdrive"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_bench_runs_a_smoke_benchmark(tmp_path, capsys):
    """One real subprocess run — a fast smoke benchmark — proving the
    PYTHONPATH wiring works from any cwd.  Uses the engine benchmark
    because it writes only to --output (the pipelines benchmark also
    rewrites the committed benchmarks/results/ablation_pipeline.txt)."""
    output = tmp_path / "bench.json"
    assert main(["bench", "engine", "--smoke", "--output", str(output)]) == 0
    data = json.loads(output.read_text())
    assert data["benchmark"] == "engine_speed"


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def test_console_script_is_declared_in_setup():
    setup_py = (repo_root() / "setup.py").read_text()
    assert "repro=repro.cli:main" in setup_py


def test_module_is_runnable_as_dash_m():
    import repro.cli

    assert callable(repro.cli.main)
    with pytest.raises(SystemExit):
        main(["--help"])  # argparse exits 0 on --help


def test_bench_reports_skip_visibly_and_exits_zero(monkeypatch, capsys):
    """A benchmark that exits 3 ("skipped: optional toolchain missing")
    must not fail `repro bench` — the skip is reported and the run goes
    on (PR 8 satellite)."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert main(["bench", "engine", "--smoke", "--", "--require-native"]) == 0
    out = capsys.readouterr().out
    assert "SKIPPED" in out
    assert "optional toolchain" in out


def test_bench_forwards_extra_flags_after_separator(capsys):
    """Unknown flags after `--` reach the benchmark script; other
    subcommands keep strict argument rejection."""
    with pytest.raises(SystemExit) as exc:
        main(["diff", "a.jsonl", "b.jsonl", "--warp-drive"])
    assert exc.value.code == 2

"""Multi-tile offload scheduler and kernel-compile cache tests.

Covers the PR 2 tentpole: sharded multi-tile offload must be numerically
and energetically identical to the single-tile model (only latency may
change), the tile scheduler must respect the double-buffered pipeline
invariants on its event timeline, and the content-addressed compile cache
must return identical results on a hit.
"""

import numpy as np
import pytest

from repro import CimSystem, CompileOptions, OffloadExecutor, SystemConfig, compile_source
from repro.compiler import (
    KernelCompileCache,
    TdoCimCompiler,
    compile_fingerprint,
)
from repro.hw.accelerator import AcceleratorConfig
from repro.hw.scheduler import ShardWork, TileScheduler, plan_gemm_shards
from repro.workloads import PAPER_KERNELS, get_kernel
from tests.conftest import GEMM_SOURCE

# A crossbar small enough that MINI operands decompose into several shard
# blocks (and large enough for the conv kernel's 3x3 = 9-tap filter).
SHARD_CROSSBAR = 12


def _make_system(num_tiles: int) -> CimSystem:
    return CimSystem(SystemConfig(
        num_tiles=num_tiles,
        crossbar_rows=SHARD_CROSSBAR,
        crossbar_cols=SHARD_CROSSBAR,
    ))


# ----------------------------------------------------------------------
# Sharded offload: numerical + accounting identity, latency improvement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PAPER_KERNELS)
def test_sharded_offload_identical_to_single_tile(name):
    kernel = get_kernel(name)
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=7)
    compiled = compile_source(kernel.source, size_hint=params)

    outputs = {}
    reports = {}
    for tiles in (1, 4):
        outputs[tiles], reports[tiles] = OffloadExecutor(
            _make_system(tiles)
        ).run(compiled, params, arrays)

    for array_name in kernel.output_arrays:
        np.testing.assert_array_equal(
            outputs[1][array_name], outputs[4][array_name],
            err_msg=f"{name}: sharded result differs for {array_name}",
        )
    # Energy, wear and op counts are tile-count-invariant by construction.
    assert reports[4].accelerator_energy_j == reports[1].accelerator_energy_j
    assert reports[4].crossbar_cell_writes == reports[1].crossbar_cell_writes
    assert reports[4].gemv_count == reports[1].gemv_count
    assert reports[4].dma_bytes == reports[1].dma_bytes
    # Latency must never regress; MINI operands shard into several blocks
    # on the small crossbar, so every paper kernel actually speeds up.
    assert reports[4].accelerator_time_s < reports[1].accelerator_time_s


def test_tile_latency_is_monotone_in_tile_count():
    kernel = get_kernel("gesummv")
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=3)
    compiled = compile_source(kernel.source, size_hint=params)
    latencies = []
    for tiles in (1, 2, 4, 8):
        _, report = OffloadExecutor(_make_system(tiles)).run(compiled, params, arrays)
        latencies.append(report.accelerator_time_s)
    assert all(a >= b for a, b in zip(latencies, latencies[1:]))
    assert latencies[2] < latencies[0]


def test_single_tile_timeline_keeps_seed_component_names():
    kernel = get_kernel("gemm")
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=1)
    compiled = compile_source(kernel.source, size_hint=params)
    system = _make_system(1)
    OffloadExecutor(system).run(compiled, params, arrays)
    components = {e.component for e in system.accelerator.timeline.events}
    assert "crossbar" in components and "dma" in components
    assert not any(c.startswith("tile") for c in components)


def test_multitile_timeline_pipeline_invariants():
    kernel = get_kernel("gemm")
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=1)
    compiled = compile_source(kernel.source, size_hint=params)
    system = _make_system(4)
    OffloadExecutor(system).run(compiled, params, arrays)
    timeline = system.accelerator.timeline
    by_component = timeline.by_component()
    tile_components = [c for c in by_component if c.startswith("tile")]
    assert len({c.split(".")[0] for c in tile_components}) > 1, (
        "expected shards on more than one tile lane"
    )
    # Per-component serialization: one tile lane never overlaps itself.
    for component in tile_components:
        events = sorted(by_component[component], key=lambda e: e.start_s)
        for prev, cur in zip(events, events[1:]):
            assert cur.start_s >= prev.end_s - 1e-15, (
                f"{component} events overlap: {prev} / {cur}"
            )
    # Pipelining: total busy time across lanes exceeds the makespan (work
    # genuinely overlapped), yet the makespan bounds every event.
    busy = sum(timeline.busy_time(c) for c in tile_components)
    assert busy > timeline.makespan_s


# ----------------------------------------------------------------------
# TileScheduler unit behaviour
# ----------------------------------------------------------------------
def test_scheduler_double_buffering_overlaps_dma_with_compute():
    shards = [ShardWork(dma_in_s=1.0, compute_s=2.0) for _ in range(4)]
    pipelined = TileScheduler(1, double_buffering=True).schedule(shards)
    serial = TileScheduler(1, double_buffering=False).schedule(shards)
    # Ping-pong: first DMA exposed, the rest hide behind compute.
    assert pipelined == pytest.approx(1.0 + 4 * 2.0)
    assert serial == pytest.approx(4 * (1.0 + 2.0))


def test_scheduler_balances_equal_shards_across_tiles():
    shards = [ShardWork(compute_s=1.0) for _ in range(8)]
    for tiles in (1, 2, 4, 8):
        makespan = TileScheduler(tiles).schedule(shards)
        assert makespan == pytest.approx(8.0 / tiles)


def test_scheduler_compute_starts_after_its_dma():
    scheduler = TileScheduler(3)
    scheduler.schedule(
        [ShardWork(dma_in_s=0.5, program_s=0.25, compute_s=1.0) for _ in range(7)]
    )
    assert len(scheduler.placements) == 7
    for placement in scheduler.placements:
        assert placement.compute_start_s >= placement.dma_end_s
        assert placement.tile < 3


def test_scheduler_rejects_bad_tile_count():
    with pytest.raises(ValueError):
        TileScheduler(0)
    with pytest.raises(ValueError):
        AcceleratorConfig(num_tiles=0)


def test_accelerator_rejects_config_and_flag_mix():
    from repro.hw.accelerator import CIMAccelerator
    from repro.system.memory import SharedMemory

    memory = SharedMemory(1 << 20, 1 << 19)
    with pytest.raises(ValueError):
        CIMAccelerator(
            memory, double_buffering=False, config=AcceleratorConfig()
        )


def test_plan_gemm_shards_respects_geometry():
    shards = plan_gemm_shards(20, 16, cols=12, rows=12)
    assert len(shards) == 4
    assert all(s.i_size <= 12 and s.k_size <= 12 for s in shards)
    with pytest.raises(ValueError):
        plan_gemm_shards(0, 16, cols=12, rows=12)


# ----------------------------------------------------------------------
# Wiring: SystemConfig / executor / driver / runtime
# ----------------------------------------------------------------------
def test_executor_num_tiles_convenience():
    executor = OffloadExecutor(num_tiles=4)
    assert executor.system.accelerator.num_tiles == 4
    with pytest.raises(ValueError):
        OffloadExecutor(_make_system(2), num_tiles=4)
    with pytest.raises(ValueError):
        OffloadExecutor(num_tiles=0)


def test_invalid_crossbar_override_raises():
    with pytest.raises(ValueError):
        CimSystem(SystemConfig(crossbar_rows=0))


def test_runtime_device_info_reports_tiles_and_geometry():
    system = _make_system(4)
    system.runtime.cim_init(0)
    info = system.runtime.cim_device_info()
    assert info["num_tiles"] == 4
    assert info["crossbar_rows"] == SHARD_CROSSBAR
    assert info["crossbar_cols"] == SHARD_CROSSBAR
    assert system.driver.counters.get("driver.query") == 1


# ----------------------------------------------------------------------
# Kernel-compile cache
# ----------------------------------------------------------------------
def test_compile_cache_hit_returns_identical_result():
    cache = KernelCompileCache()
    options = CompileOptions()
    first = compile_source(GEMM_SOURCE, options=options, cache=cache)
    second = compile_source(GEMM_SOURCE, options=options, cache=cache)
    assert second is first
    assert cache.hits == 1 and cache.misses == 1
    # The cached result still runs end to end.
    rng = np.random.default_rng(0)
    arrays = {
        "A": rng.random((8, 6), dtype=np.float32),
        "B": rng.random((6, 5), dtype=np.float32),
        "C": rng.random((8, 5), dtype=np.float32),
    }
    params = {"M": 8, "N": 5, "K": 6, "alpha": 1.5, "beta": 1.2}
    outputs, _ = OffloadExecutor().run(second, params, arrays)
    reference = 1.2 * arrays["C"] + 1.5 * (
        arrays["A"].astype(np.float64) @ arrays["B"].astype(np.float64)
    )
    np.testing.assert_allclose(outputs["C"], reference, rtol=1e-5, atol=1e-6)


def test_compile_cache_distinguishes_options_and_hints():
    cache = KernelCompileCache()
    base = compile_source(GEMM_SOURCE, cache=cache)
    host_only = compile_source(
        GEMM_SOURCE, options=CompileOptions.host_only(), cache=cache
    )
    hinted = compile_source(
        GEMM_SOURCE, size_hint={"M": 4, "N": 4, "K": 4}, cache=cache
    )
    assert host_only is not base and hinted is not base
    assert cache.misses == 3 and len(cache) == 3


def test_compile_fingerprint_ignores_cache_control_fields(tmp_path):
    plain = compile_fingerprint(GEMM_SOURCE, CompileOptions())
    controlled = compile_fingerprint(
        GEMM_SOURCE,
        CompileOptions(enable_compile_cache=False, compile_cache_dir=str(tmp_path)),
    )
    assert plain == controlled
    assert plain != compile_fingerprint(GEMM_SOURCE, CompileOptions(engine="interpreter"))


def test_compile_cache_disabled_by_option():
    compiler = TdoCimCompiler(CompileOptions(enable_compile_cache=False))
    assert compiler.cache is None
    first = compiler.compile(GEMM_SOURCE)
    second = compiler.compile(GEMM_SOURCE)
    assert first is not second


def test_explicit_cache_wins_over_disabled_option():
    cache = KernelCompileCache()
    options = CompileOptions(enable_compile_cache=False)
    first = compile_source(GEMM_SOURCE, options=options, cache=cache)
    second = compile_source(GEMM_SOURCE, options=options, cache=cache)
    assert second is first
    assert cache.hits == 1 and cache.misses == 1


def test_compile_cache_lru_eviction():
    cache = KernelCompileCache(capacity=2)
    sources = [
        GEMM_SOURCE,
        GEMM_SOURCE.replace("gemm", "gemm_b"),
        GEMM_SOURCE.replace("gemm", "gemm_c"),
    ]
    for source in sources:
        compile_source(source, cache=cache)
    assert len(cache) == 2
    # The first source was evicted: compiling it again is a miss.
    misses_before = cache.misses
    compile_source(sources[0], cache=cache)
    assert cache.misses == misses_before + 1


def test_compile_cache_disk_persistence(tmp_path):
    options = CompileOptions(compile_cache_dir=str(tmp_path))
    writer = TdoCimCompiler(options)
    original = writer.compile(GEMM_SOURCE)
    assert list(tmp_path.glob("*.pkl")), "expected an on-disk cache entry"

    # A fresh compiler (cold in-memory cache) loads the persisted result.
    reader = TdoCimCompiler(CompileOptions(compile_cache_dir=str(tmp_path)))
    restored = reader.compile(GEMM_SOURCE)
    assert restored is not original
    assert reader.cache.hits == 1
    assert restored.report.offloaded_kernels == original.report.offloaded_kernels
    assert [d.offloaded for d in restored.report.decisions] == [
        d.offloaded for d in original.report.decisions
    ]

    params = {"M": 6, "N": 6, "K": 6, "alpha": 1.0, "beta": 0.0}
    rng = np.random.default_rng(5)
    arrays = {
        "A": rng.random((6, 6), dtype=np.float32),
        "B": rng.random((6, 6), dtype=np.float32),
        "C": np.zeros((6, 6), dtype=np.float32),
    }
    out_restored, _ = OffloadExecutor().run(restored, params, arrays)
    out_original, _ = OffloadExecutor().run(original, params, arrays)
    np.testing.assert_array_equal(out_restored["C"], out_original["C"])

"""Property-based tests for the dynamic batcher and the fair-share
scheduler (PR 4 satellite).

The two contract properties of the serving layer:

1. **Bit-identity under any interleaving** — however tenant submissions
   interleave (tenant assignment, shared vs private matrices, arrival
   spacing, window/batch-size configuration), every request's results are
   bit-identical to running its program alone through a fresh
   :class:`OffloadExecutor`.
2. **No starvation** — a tenant submitting a single request while another
   tenant floods the server still gets served, with bounded queueing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CimServer, OffloadExecutor, ServerConfig, TenantQuota
from repro.serve import RequestStatus

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

GESUMMV_LIKE_SOURCE = """
void twomv(int M, int N, float A[M][N], float B[M][N], float x[N],
           float y[M], float z[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
  for (int i = 0; i < M; i++) {
    z[i] = 0.0;
    for (int j = 0; j < N; j++)
      z[i] += B[i][j] * x[j];
  }
}
"""

SIZE = 16
PARAMS = {"M": SIZE, "N": SIZE}

#: A small pool of stationary matrices the strategy draws from — index 0
#: is "the shared model"; distinct indices never batch together.
_MATRIX_POOL_SEED = 99


def _matrix_pool():
    rng = np.random.default_rng(_MATRIX_POOL_SEED)
    return [rng.random((SIZE, SIZE), dtype=np.float32) for _ in range(3)]


submission_plans = st.lists(
    st.tuples(
        st.sampled_from(["alice", "bob", "carol"]),   # tenant
        st.integers(0, 2),                             # matrix pool index
        st.integers(0, 1),                             # kernel choice
        st.integers(0, 50),                            # arrival gap (µs)
        st.integers(0, 2**31 - 1),                     # vector seed
    ),
    min_size=1,
    max_size=10,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    plan=submission_plans,
    window_us=st.sampled_from([0, 40, 150]),
    max_batch=st.sampled_from([1, 3, 8]),
)
def test_any_interleaving_is_bit_identical_to_serial(plan, window_us, max_batch):
    pool = _matrix_pool()
    sources = [GEMV_SOURCE, GESUMMV_LIKE_SOURCE]
    config = ServerConfig(
        batch_window_s=window_us * 1e-6, max_batch_size=max_batch
    )
    submissions = []
    with CimServer(config) as server:
        arrival = 0.0
        for tenant, matrix_idx, kernel_idx, gap_us, seed in plan:
            arrival += gap_us * 1e-6
            rng = np.random.default_rng(seed)
            if kernel_idx == 0:
                arrays = {
                    "A": pool[matrix_idx],
                    "x": rng.random(SIZE, dtype=np.float32),
                    "y": np.zeros(SIZE, dtype=np.float32),
                }
            else:
                arrays = {
                    "A": pool[matrix_idx],
                    "B": pool[(matrix_idx + 1) % 3],
                    "x": rng.random(SIZE, dtype=np.float32),
                    "y": np.zeros(SIZE, dtype=np.float32),
                    "z": np.zeros(SIZE, dtype=np.float32),
                }
            source = sources[kernel_idx]
            handle = server.submit(
                tenant,
                source,
                PARAMS,
                arrays,
                arrival_s=arrival,
            )
            submissions.append(
                (handle, source, {n: v.copy() for n, v in arrays.items()})
            )
        server.drain()

        # Every request completed (no quota in play) ...
        assert all(
            handle.status is RequestStatus.COMPLETED
            for handle, _, _ in submissions
        )
        # ... and the accounting partition is exact.
        checks = server.ledger.verify_partition(server.system.accelerator)
        assert all(checks.values()), checks

        # Bit-identity against fresh, serialized single-request execution.
        for handle, source, arrays in submissions:
            program = server.compiler.compile(source, size_hint=PARAMS).program
            direct, _ = OffloadExecutor().run(program, PARAMS, arrays)
            served = handle.result()
            assert set(direct) == set(served)
            for name in direct:
                assert np.array_equal(direct[name], served[name]), (
                    f"request {handle.request_id} array {name!r} diverged"
                )


@settings(max_examples=10, deadline=None)
@given(
    flood=st.integers(5, 25),
    light_weight=st.sampled_from([0.5, 1.0, 4.0]),
    window_us=st.sampled_from([0, 60]),
)
def test_fair_share_never_starves_a_tenant(flood, light_weight, window_us):
    """A flooding tenant cannot starve a light tenant: the light tenant's
    lone request completes, and fair sharing dispatches it ahead of the
    flooder's backlog once it is queued."""
    rng = np.random.default_rng(7)
    flood_matrix = rng.random((SIZE, SIZE), dtype=np.float32)
    light_matrix = rng.random((SIZE, SIZE), dtype=np.float32)
    config = ServerConfig(
        batch_window_s=window_us * 1e-6,
        max_batch_size=4,
        default_quota=TenantQuota(max_queue_depth=64),
    )
    with CimServer(config) as server:
        server.set_quota(
            "light", TenantQuota(max_queue_depth=64, weight=light_weight)
        )
        flood_handles = [
            server.submit(
                "flood",
                GEMV_SOURCE,
                PARAMS,
                {
                    "A": flood_matrix,
                    "x": rng.random(SIZE, dtype=np.float32),
                    "y": np.zeros(SIZE, dtype=np.float32),
                },
                arrival_s=0.0,
            )
            for _ in range(flood)
        ]
        light_handle = server.submit(
            "light",
            GEMV_SOURCE,
            PARAMS,
            {
                "A": light_matrix,
                "x": rng.random(SIZE, dtype=np.float32),
                "y": np.zeros(SIZE, dtype=np.float32),
            },
            arrival_s=0.0,
        )
        server.drain()
        assert light_handle.status is RequestStatus.COMPLETED
        assert all(h.status is RequestStatus.COMPLETED for h in flood_handles)
        # Fair share: once the light tenant has no attained service it is
        # picked over the flooder — its request rides at latest in the
        # second dispatched batch.
        assert light_handle.batch_id <= 2
        # And the flood tenant still attains (weighted) more service.
        attained = server.admission.attained_s
        assert attained["flood"] > attained["light"]


def test_flooded_queue_rejects_but_light_tenant_unaffected():
    """Backpressure on one tenant's queue never spills onto another."""
    rng = np.random.default_rng(8)
    config = ServerConfig(
        batch_window_s=0.0,
        default_quota=TenantQuota(max_queue_depth=3),
    )
    with CimServer(config) as server:
        matrix = rng.random((SIZE, SIZE), dtype=np.float32)
        flood_handles = [
            server.submit(
                "flood",
                GEMV_SOURCE,
                PARAMS,
                {
                    "A": matrix,
                    "x": rng.random(SIZE, dtype=np.float32),
                    "y": np.zeros(SIZE, dtype=np.float32),
                },
                arrival_s=0.0,
            )
            for _ in range(10)
        ]
        light_handle = server.submit(
            "light",
            GEMV_SOURCE,
            PARAMS,
            {
                "A": rng.random((SIZE, SIZE), dtype=np.float32),
                "x": rng.random(SIZE, dtype=np.float32),
                "y": np.zeros(SIZE, dtype=np.float32),
            },
            arrival_s=0.0,
        )
        server.drain()
        rejected = [
            h for h in flood_handles if h.status is RequestStatus.REJECTED
        ]
        assert rejected, "expected backpressure on the flooding tenant"
        assert light_handle.status is RequestStatus.COMPLETED

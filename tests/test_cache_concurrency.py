"""Threaded stress tests for :class:`KernelCompileCache` (PR 4 satellite).

The serving layer shares one compile cache between its submission path and
arbitrary caller threads, so the LRU bookkeeping, the statistics and the
on-disk persistence must tolerate concurrent use without corruption.
"""

from __future__ import annotations

import threading

import pytest

from repro.compiler import CompileOptions, KernelCompileCache, compile_fingerprint
from repro.compiler.driver import TdoCimCompiler
from repro.workloads import get_kernel


def _hammer(cache: KernelCompileCache, keys: list[str], rounds: int, errors: list):
    try:
        for round_no in range(rounds):
            for key in keys:
                value = cache.get(key)
                if value is None:
                    cache.put(key, ("payload", key))
                else:
                    # A cached entry must always be the one stored under
                    # its own key — any cross-talk is corruption.
                    assert value == ("payload", key)
            len(cache)
            repr(cache)
            if round_no % 7 == 0:
                key = keys[round_no % len(keys)]
                key in cache  # noqa: B015 - exercising __contains__ under load
    except Exception as exc:  # pragma: no cover - only on corruption
        errors.append(exc)


@pytest.mark.parametrize("capacity", [4, 64])
def test_threaded_stress_in_memory(capacity):
    cache = KernelCompileCache(capacity=capacity)
    keys = [f"key-{i:02d}" for i in range(16)]
    errors: list = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, keys, 50, errors))
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= capacity
    # Every lookup was either a hit or a miss; the counters never tear.
    total_gets = 8 * 50 * len(keys)
    assert cache.hits + cache.misses == total_gets
    for key in keys:
        value = cache.get(key)
        if value is not None:
            assert value == ("payload", key)


def test_threaded_stress_with_disk_persistence(tmp_path):
    cache = KernelCompileCache(capacity=8, disk_dir=tmp_path)
    keys = [f"disk-key-{i:02d}" for i in range(12)]
    errors: list = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, keys, 25, errors))
        for _ in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Everything ever stored is recoverable from disk through a fresh
    # cache (atomic tmp-file + rename: no torn pickles).
    fresh = KernelCompileCache(capacity=32, disk_dir=tmp_path)
    for key in keys:
        value = fresh.get(key)
        assert value == ("payload", key)


def test_concurrent_compiles_share_one_cache():
    """Racing real compiles of the same kernel through one shared cache is
    safe and yields the canonical cached result for every thread."""
    kernel = get_kernel("mvt")
    params = kernel.params("MINI")
    cache = KernelCompileCache()
    options = CompileOptions()
    results: list = [None] * 6
    errors: list = []

    def compile_one(slot: int):
        try:
            compiler = TdoCimCompiler(options, cache=cache)
            results[slot] = compiler.compile(kernel.source, size_hint=params)
        except Exception as exc:  # pragma: no cover - only on corruption
            errors.append(exc)

    threads = [threading.Thread(target=compile_one, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert all(result is not None for result in results)
    key = compile_fingerprint(kernel.source, options, params)
    canonical = cache.get(key)
    assert canonical is not None
    # After the race settles, the cache serves one canonical object and
    # every compiled program is equivalent to it.
    from repro.ir.printer import to_source

    reference = to_source(canonical.program)
    for result in results:
        assert to_source(result.program) == reference
    assert len(cache) == 1

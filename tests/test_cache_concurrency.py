"""Threaded stress tests for :class:`KernelCompileCache` (PR 4 satellite).

The serving layer shares one compile cache between its submission path and
arbitrary caller threads, so the LRU bookkeeping, the statistics and the
on-disk persistence must tolerate concurrent use without corruption.
"""

from __future__ import annotations

import threading

import pytest

from repro.compiler import CompileOptions, KernelCompileCache, compile_fingerprint
from repro.compiler.driver import TdoCimCompiler
from repro.workloads import get_kernel


def _hammer(cache: KernelCompileCache, keys: list[str], rounds: int, errors: list):
    try:
        for round_no in range(rounds):
            for key in keys:
                value = cache.get(key)
                if value is None:
                    cache.put(key, ("payload", key))
                else:
                    # A cached entry must always be the one stored under
                    # its own key — any cross-talk is corruption.
                    assert value == ("payload", key)
            len(cache)
            repr(cache)
            if round_no % 7 == 0:
                key = keys[round_no % len(keys)]
                key in cache  # noqa: B015 - exercising __contains__ under load
    except Exception as exc:  # pragma: no cover - only on corruption
        errors.append(exc)


@pytest.mark.parametrize("capacity", [4, 64])
def test_threaded_stress_in_memory(capacity):
    cache = KernelCompileCache(capacity=capacity)
    keys = [f"key-{i:02d}" for i in range(16)]
    errors: list = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, keys, 50, errors))
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= capacity
    # Every lookup was either a hit or a miss; the counters never tear.
    total_gets = 8 * 50 * len(keys)
    assert cache.hits + cache.misses == total_gets
    for key in keys:
        value = cache.get(key)
        if value is not None:
            assert value == ("payload", key)


def test_threaded_stress_with_disk_persistence(tmp_path):
    cache = KernelCompileCache(capacity=8, disk_dir=tmp_path)
    keys = [f"disk-key-{i:02d}" for i in range(12)]
    errors: list = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, keys, 25, errors))
        for _ in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Everything ever stored is recoverable from disk through a fresh
    # cache (atomic tmp-file + rename: no torn pickles).
    fresh = KernelCompileCache(capacity=32, disk_dir=tmp_path)
    for key in keys:
        value = fresh.get(key)
        assert value == ("payload", key)


def test_concurrent_compiles_share_one_cache():
    """Racing real compiles of the same kernel through one shared cache is
    safe and yields the canonical cached result for every thread."""
    kernel = get_kernel("mvt")
    params = kernel.params("MINI")
    cache = KernelCompileCache()
    options = CompileOptions()
    results: list = [None] * 6
    errors: list = []

    def compile_one(slot: int):
        try:
            compiler = TdoCimCompiler(options, cache=cache)
            results[slot] = compiler.compile(kernel.source, size_hint=params)
        except Exception as exc:  # pragma: no cover - only on corruption
            errors.append(exc)

    threads = [threading.Thread(target=compile_one, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert all(result is not None for result in results)
    key = compile_fingerprint(kernel.source, options, params)
    canonical = cache.get(key)
    assert canonical is not None
    # After the race settles, the cache serves one canonical object and
    # every compiled program is equivalent to it.
    from repro.ir.printer import to_source

    reference = to_source(canonical.program)
    for result in results:
        assert to_source(result.program) == reference
    assert len(cache) == 1


# ----------------------------------------------------------------------
# Cross-process file locking (PR 8 satellite)
# ----------------------------------------------------------------------
def test_disk_operations_take_the_cross_process_lock(tmp_path):
    fcntl = pytest.importorskip("fcntl")  # noqa: F841 - POSIX-only tests
    cache = KernelCompileCache(disk_dir=tmp_path)
    cache.put("locked-key", ("payload", "locked-key"))
    assert (tmp_path / ".lock").exists()
    fresh = KernelCompileCache(disk_dir=tmp_path)
    assert fresh.get("locked-key") == ("payload", "locked-key")
    assert fresh.lock_timeouts == 0


def test_held_lock_degrades_to_miss_within_timeout(tmp_path):
    """A wedged holder must cost at most ``lock_timeout_s`` and then the
    operation degrades — a load becomes a miss, a store is skipped —
    instead of blocking a compile forever."""
    fcntl = pytest.importorskip("fcntl")
    cache = KernelCompileCache(disk_dir=tmp_path, lock_timeout_s=0.05)
    cache.put("key", ("payload", "key"))  # creates dir, .lock and entry

    import time

    with open(tmp_path / ".lock", "a+b") as holder:
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            fresh = KernelCompileCache(disk_dir=tmp_path, lock_timeout_s=0.05)
            start = time.monotonic()
            assert fresh.get("key") is None  # on disk, but unreachable
            elapsed = time.monotonic() - start
            assert elapsed < 2.0  # bounded, not a deadlock
            assert fresh.lock_timeouts == 1
            assert fresh.misses == 1

            fresh.put("other", ("payload", "other"))  # store is skipped
            assert fresh.lock_timeouts == 2
            assert not (tmp_path / "other.pkl").exists()
            # ...but the in-memory copy still serves this process.
            assert fresh.get("other") == ("payload", "other")
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)

    # Lock released: the same cache reaches the disk again.
    assert fresh.get("key") == ("payload", "key")


def test_lock_timeout_validation():
    with pytest.raises(ValueError, match="lock_timeout_s"):
        KernelCompileCache(lock_timeout_s=-1.0)


def test_lock_contention_across_real_processes(tmp_path):
    """Two processes hammering the same disk directory stay consistent:
    every stored entry is recoverable and uncorrupted."""
    import subprocess
    import sys

    script = (
        "import sys\n"
        "sys.path.insert(0, sys.argv[2])\n"
        "from repro.compiler import KernelCompileCache\n"
        "cache = KernelCompileCache(disk_dir=sys.argv[1])\n"
        "for round_no in range(30):\n"
        "    for i in range(8):\n"
        "        key = f'proc-key-{i}'\n"
        "        value = cache.get(key)\n"
        "        if value is None:\n"
        "            cache.put(key, ('payload', key))\n"
        "        else:\n"
        "            assert value == ('payload', key), value\n"
    )
    import pathlib

    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path), src],
            stderr=subprocess.PIPE,
        )
        for _ in range(3)
    ]
    for proc in procs:
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
    fresh = KernelCompileCache(disk_dir=tmp_path)
    for i in range(8):
        assert fresh.get(f"proc-key-{i}") == ("payload", f"proc-key-{i}")

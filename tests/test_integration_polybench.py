"""Integration tests: every PolyBench kernel, compiled and offloaded, must
produce the same results as the NumPy reference, and its evaluation metrics
must be self-consistent."""

import numpy as np
import pytest

from repro import CompileOptions, OffloadExecutor, compile_source
from repro.eval import evaluate_kernel
from repro.ir import Interpreter
from repro.ir.normalize import normalize_reductions
from repro.workloads import KERNELS, PAPER_KERNELS, get_kernel, kernel_names

ALL_KERNELS = sorted(KERNELS)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_offloaded_kernel_matches_numpy_reference(name):
    kernel = get_kernel(name)
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=7)
    result = compile_source(kernel.source, size_hint=params)
    assert result.report.offloaded_kernels > 0, f"{name} was not offloaded"
    outputs, report = OffloadExecutor().run(result.program, params, arrays)
    reference = kernel.numpy_reference(params, arrays)
    for array_name in kernel.output_arrays:
        np.testing.assert_allclose(
            outputs[array_name], reference[array_name], rtol=1e-3, atol=1e-4,
            err_msg=f"{name}: offloaded result differs for {array_name}",
        )
    assert report.offloaded


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_host_interpretation_matches_numpy_reference(name):
    kernel = get_kernel(name)
    params = kernel.params("MINI")
    arrays = kernel.arrays("MINI", seed=3)
    program = normalize_reductions(
        compile_source(kernel.source, options=CompileOptions.host_only()).program
    )
    outputs = Interpreter(program).run(params, arrays)
    reference = kernel.numpy_reference(params, arrays)
    for array_name in kernel.output_arrays:
        np.testing.assert_allclose(
            outputs[array_name], reference[array_name], rtol=1e-3, atol=1e-4,
            err_msg=f"{name}: host result differs for {array_name}",
        )


@pytest.mark.parametrize("name", PAPER_KERNELS)
def test_kernel_evaluation_is_self_consistent(name):
    evaluation = evaluate_kernel(name, dataset="MINI", verify=True)
    assert evaluation.host_energy_j > 0
    assert evaluation.cim_energy_j > 0
    assert evaluation.host_time_s > 0 and evaluation.cim_time_s > 0
    assert evaluation.edp_improvement == pytest.approx(
        evaluation.energy_improvement * evaluation.runtime_improvement, rel=1e-9
    )
    assert evaluation.macs_per_cim_write > 0


def test_gemm_like_kernels_have_higher_intensity_than_gemv_like():
    gemm_like = evaluate_kernel("gemm", dataset="MINI")
    gemv_like = evaluate_kernel("mvt", dataset="MINI")
    assert gemm_like.macs_per_cim_write > gemv_like.macs_per_cim_write
    assert gemv_like.macs_per_cim_write == pytest.approx(1.0)


def test_kernel_registry_metadata():
    assert set(PAPER_KERNELS) <= set(kernel_names())
    for name in kernel_names():
        kernel = get_kernel(name)
        assert kernel.category in ("gemm-like", "gemv-like")
        for dataset in ("MINI", "SMALL", "MEDIUM", "LARGE"):
            params = kernel.params(dataset)
            assert params, f"{name} has empty dataset {dataset}"
        arrays = kernel.arrays("MINI")
        assert set(kernel.output_arrays) <= set(arrays)


def test_unknown_kernel_and_dataset_raise():
    with pytest.raises(KeyError):
        get_kernel("nonexistent")
    with pytest.raises(KeyError):
        get_kernel("gemm").params("HUGE")


def test_dataset_sizes_are_monotonic():
    for name in kernel_names():
        kernel = get_kernel(name)
        sizes = []
        for dataset in ("MINI", "SMALL", "MEDIUM", "LARGE"):
            params = kernel.params(dataset)
            sizes.append(sum(v for k, v in params.items() if k not in ("alpha", "beta")))
        assert sizes == sorted(sizes), f"{name} dataset sizes not monotonic"

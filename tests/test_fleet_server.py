"""Unit tests for the fault-tolerant multi-device fleet tier (PR 6
tentpole).

Covers placement policies, the deterministic fault plan, retry with
backoff, lease migration after device deaths, quarantine/drain,
graceful admission degradation, exactly-once accounting under faults
(the differential fault test: same trace with and without faults gives
bit-identical payloads and an exact fleet-wide ledger partition), fleet
health metrics and the idempotent-guarded handle transitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.executor import ExecutionReport
from repro.eval import (
    fleet_device_rows,
    fleet_implied_lifetime_years,
    format_fleet_table,
    tenant_usage_rows,
)
from repro.fleet import (
    CapacityDegrade,
    DeviceKill,
    DeviceState,
    FaultPlan,
    FleetConfig,
    FleetServer,
    LeastLoadedPlacement,
    OpFaultRule,
    RoundRobinPlacement,
    WearAwarePlacement,
    make_placement,
)
from repro.serve import CimServer, RequestStatus, ServerConfig, ServeError
from repro.serve.errors import HandleStateError
from repro.serve.request import RequestHandle

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

PARAMS = {"M": 24, "N": 24}


def _gemv_arrays(rng, matrix=None):
    return {
        "A": matrix if matrix is not None else rng.random((24, 24), dtype=np.float32),
        "x": rng.random(24, dtype=np.float32),
        "y": np.zeros(24, dtype=np.float32),
    }


def _fleet_config(**overrides):
    defaults = dict(
        num_devices=3, batch_window_s=1e-4, max_batch_size=8
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _submit_trace(fleet, count=18, tenants=3, spacing_s=5e-5, seed=0):
    """One deterministic shared-matrix GEMV trace; returns the handles."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((24, 24), dtype=np.float32)
    handles = []
    for index in range(count):
        handles.append(
            fleet.submit(
                f"tenant{index % tenants}",
                GEMV_SOURCE,
                PARAMS,
                _gemv_arrays(rng, matrix),
                arrival_s=index * spacing_s,
            )
        )
    return handles


# ---------------------------------------------------------------------------
# Fault plan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceKill(0, -1.0)
        with pytest.raises(ValueError):
            CapacityDegrade(0, 1.0, 0.0)
        with pytest.raises(ValueError):
            CapacityDegrade(0, 1.0, 1.5)
        with pytest.raises(ValueError):
            OpFaultRule("reboot", 0.5)
        with pytest.raises(ValueError):
            OpFaultRule("dma", 1.5)
        with pytest.raises(ValueError):  # one kill per device
            FaultPlan(kills=[DeviceKill(0, 1.0), DeviceKill(0, 2.0)])

    def test_draws_are_deterministic_and_replayable(self):
        plan = FaultPlan(
            op_rules=[OpFaultRule("dma", 0.3), OpFaultRule("dispatch", 0.1)],
            seed=7,
        )
        trace = [
            (plan.draw_op_fault(0, "dma") is not None,
             plan.draw_op_fault(1, "dispatch") is not None)
            for _ in range(50)
        ]
        replay = plan.fresh()
        trace2 = [
            (replay.draw_op_fault(0, "dma") is not None,
             replay.draw_op_fault(1, "dispatch") is not None)
            for _ in range(50)
        ]
        assert trace == trace2
        assert any(flag for pair in trace for flag in pair)

    def test_max_faults_caps_a_rule(self):
        plan = FaultPlan(op_rules=[OpFaultRule("dma", 1.0, max_faults=3)])
        fired = sum(
            plan.draw_op_fault(0, "dma") is not None for _ in range(10)
        )
        assert fired == 3
        assert plan.op_faults_drawn == 3

    def test_device_scoped_rule(self):
        plan = FaultPlan(op_rules=[OpFaultRule("dma", 1.0, device_id=1)])
        assert plan.draw_op_fault(0, "dma") is None
        assert plan.draw_op_fault(1, "dma") is not None

    def test_kill_time_lookup(self):
        plan = FaultPlan(kills=[DeviceKill(2, 0.5)])
        assert plan.kill_time(2) == 0.5
        assert plan.kill_time(0) is None


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------
class TestPlacement:
    def test_make_placement(self):
        assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
        assert isinstance(make_placement("least-loaded"), LeastLoadedPlacement)
        assert isinstance(make_placement("wear-aware"), WearAwarePlacement)
        policy = WearAwarePlacement()
        assert make_placement(policy) is policy
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("psychic")

    def test_round_robin_rotates_across_devices(self):
        with FleetServer(_fleet_config(placement="round-robin")) as fleet:
            handles = _submit_trace(fleet, count=12)
            fleet.drain()
            devices_used = {handle.device_id for handle in handles}
            assert devices_used == {0, 1, 2}

    def test_wear_aware_avoids_pre_aged_device(self):
        # Device 0 joins the fleet with massive pre-existing wear; the
        # wear-aware policy must steer leases to the younger devices.
        config = _fleet_config(
            placement="wear-aware",
            initial_wear_bytes=(10**9, 0, 0),
        )
        with FleetServer(config) as fleet:
            handles = _submit_trace(fleet, count=12)
            fleet.drain()
            devices_used = {handle.device_id for handle in handles}
            assert 0 not in devices_used
        # Round-robin happily keeps aging it.
        config = _fleet_config(
            placement="round-robin",
            initial_wear_bytes=(10**9, 0, 0),
        )
        with FleetServer(config) as fleet:
            handles = _submit_trace(fleet, count=12)
            fleet.drain()
            assert 0 in {handle.device_id for handle in handles}

    def test_wear_aware_levels_wear(self):
        with FleetServer(_fleet_config(placement="wear-aware")) as fleet:
            _submit_trace(fleet, count=18)
            fleet.drain()
            wear = [device.total_wear_bytes for device in fleet.devices]
            assert all(w > 0 for w in wear)
            assert max(wear) <= 2 * min(wear)


# ---------------------------------------------------------------------------
# Fault-free fleet behaviour
# ---------------------------------------------------------------------------
class TestFleetFaultFree:
    def test_single_device_fleet_matches_cim_server(self):
        """A 1-device fleet serves the same trace with bit-identical
        responses to the single-device CimServer (same dispatch engine)."""
        with FleetServer(
            FleetConfig(num_devices=1, batch_window_s=1e-4, max_batch_size=8)
        ) as fleet:
            fleet_handles = _submit_trace(fleet, count=10)
            fleet.drain()
        with CimServer(ServerConfig(batch_window_s=1e-4, max_batch_size=8)) as server:
            rng = np.random.default_rng(0)
            matrix = rng.random((24, 24), dtype=np.float32)
            server_handles = [
                server.submit(
                    f"tenant{index % 3}",
                    GEMV_SOURCE,
                    PARAMS,
                    _gemv_arrays(rng, matrix),
                    arrival_s=index * 5e-5,
                )
                for index in range(10)
            ]
            server.drain()
        for fh, sh in zip(fleet_handles, server_handles):
            assert fh.status is RequestStatus.COMPLETED
            assert sh.status is RequestStatus.COMPLETED
            for name, value in sh.result().items():
                np.testing.assert_array_equal(fh.result()[name], value)

    def test_devices_serve_in_parallel_simulated_time(self):
        """N devices overlap leases: the makespan is shorter than the
        same trace on one device."""
        def makespan(num_devices):
            config = FleetConfig(
                num_devices=num_devices,
                batch_window_s=1e-6,
                max_batch_size=1,    # one lease per request
                placement="least-loaded",
            )
            with FleetServer(config) as fleet:
                handles = _submit_trace(fleet, count=12, spacing_s=0.0)
                fleet.drain()
                return max(handle.completed_s for handle in handles)

        assert makespan(3) < makespan(1)

    def test_partition_and_tenant_rows(self):
        with FleetServer(_fleet_config()) as fleet:
            _submit_trace(fleet, count=12)
            fleet.drain()
            assert all(fleet.verify_fleet_partition().values())
            rows = tenant_usage_rows(fleet)
            assert {row.tenant for row in rows} == {
                "tenant0", "tenant1", "tenant2"
            }
            device_rows = fleet_device_rows(fleet)
            assert len(device_rows) == 3
            assert sum(row.served for row in device_rows) == 12
            table = format_fleet_table(device_rows)
            assert "device" in table and "lifetime" in table
            assert fleet_implied_lifetime_years(device_rows) > 0

    def test_shutdown_is_idempotent_and_blocks_submit(self):
        fleet = FleetServer(_fleet_config())
        fleet.shutdown()
        fleet.shutdown()
        with pytest.raises(ServeError, match="shut down"):
            fleet.submit("t", GEMV_SOURCE, PARAMS, {})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_devices=0)
        with pytest.raises(ValueError):
            FleetConfig(max_attempts=0)
        with pytest.raises(ValueError):
            FleetConfig(num_devices=1, initial_wear_bytes=(1, 2))


# ---------------------------------------------------------------------------
# Faults, retry, migration, quarantine
# ---------------------------------------------------------------------------
class TestFleetFaults:
    def test_transient_faults_retry_to_success(self):
        plan = FaultPlan(
            op_rules=[OpFaultRule("dma", 1.0, max_faults=4)], seed=3
        )
        with FleetServer(_fleet_config(fault_plan=plan)) as fleet:
            handles = _submit_trace(fleet, count=10)
            snap = fleet.drain()
            assert all(h.status is RequestStatus.COMPLETED for h in handles)
            fleet_stats = snap["fleet"]
            assert fleet_stats["faults_injected"] >= 4
            assert fleet_stats["retries"] >= 4
            assert fleet_stats["faults_recovered"] >= 1
            assert fleet_stats["faults_unrecovered"] == 0
            retried = [h for h in handles if h.retries > 0]
            assert retried
            assert all(fleet.verify_fleet_partition().values())

    def test_retry_exhaustion_fails_the_request(self):
        # Every dma op faults, forever: requests burn all attempts.
        plan = FaultPlan(op_rules=[OpFaultRule("dma", 1.0)], seed=0)
        config = _fleet_config(fault_plan=plan, max_attempts=3)
        with FleetServer(config) as fleet:
            handles = _submit_trace(fleet, count=4, tenants=1)
            snap = fleet.drain()
            assert all(h.status is RequestStatus.FAILED for h in handles)
            assert all(h.attempts == 3 for h in handles)
            assert all(
                "RetryExhausted" in h.reject_reason for h in handles
            )
            assert snap["fleet"]["faults_unrecovered"] == len(handles)
            assert all(fleet.verify_fleet_partition().values())

    def test_device_death_migrates_lease_to_healthy_device(self):
        # Device 0 dies right after its first lease starts: the stranded
        # members migrate and complete elsewhere.
        plan = FaultPlan(kills=[DeviceKill(0, 1.05e-4)])
        config = _fleet_config(
            num_devices=2, placement="round-robin", fault_plan=plan
        )
        with FleetServer(config) as fleet:
            handles = _submit_trace(fleet, count=12, spacing_s=1e-5)
            snap = fleet.drain()
            assert all(h.status is RequestStatus.COMPLETED for h in handles)
            assert fleet.devices[0].state is DeviceState.DRAINED
            assert fleet.devices[1].state is DeviceState.UP
            migrated = [h for h in handles if h.migrations > 0]
            assert migrated
            assert all(h.device_id == 1 for h in migrated)
            stats = snap["fleet"]
            assert stats["devices"] == {"0": "drained", "1": "up"}
            assert stats["migrations"] == len(migrated)
            assert stats["faults_by_op"].get("device") == 1
            assert all(fleet.verify_fleet_partition().values())

    def test_mid_attempt_death_compensates_billed_work(self):
        """The 'work billed on a dead device' case: the attempt ran (the
        crossbar was physically programmed) but the device died before
        the response was released — the work must land in compensations,
        never on a tenant, and the partition must stay exact."""
        plan = FaultPlan(kills=[DeviceKill(0, 1.000001e-4)])
        config = _fleet_config(
            num_devices=2, placement="round-robin", fault_plan=plan
        )
        with FleetServer(config) as fleet:
            handles = _submit_trace(fleet, count=8, tenants=1, spacing_s=1e-5)
            fleet.drain()
            assert all(h.status is RequestStatus.COMPLETED for h in handles)
            comps = fleet.ledger.device_compensations(0)
            assert comps, "the interrupted attempt's work must be compensated"
            assert fleet.ledger.compensated_wear_bytes > 0
            # The dead device's physical ledger still reconciles exactly.
            assert all(fleet.verify_fleet_partition().values())
            # No tenant was billed for the lost attempt: tenant wear on
            # device 0 + compensation == device 0 physical writes.
            billed = sum(
                u.wear_bytes for u in fleet.ledger.device_usages(0)
            )
            physical = fleet.devices[0].system.accelerator.total_cell_writes()
            assert billed + fleet.ledger.compensated_wear_bytes == physical

    def test_whole_fleet_death_fails_remaining_requests(self):
        plan = FaultPlan(kills=[DeviceKill(0, 1.5e-4)])
        config = FleetConfig(
            num_devices=1, batch_window_s=1e-4, max_batch_size=4,
            fault_plan=plan,
        )
        with FleetServer(config) as fleet:
            handles = _submit_trace(fleet, count=8, tenants=1, spacing_s=1e-5)
            fleet.drain()
            statuses = {h.status for h in handles}
            assert RequestStatus.FAILED in statuses
            failed = [h for h in handles if h.status is RequestStatus.FAILED]
            assert all(
                "no healthy devices" in h.reject_reason for h in failed
            )
            assert all(fleet.verify_fleet_partition().values())

    def test_degradation_tightens_admission(self):
        """Device deaths shrink every tenant's effective queue bound."""
        plan = FaultPlan(kills=[DeviceKill(0, 1e-6), DeviceKill(1, 1e-6)])
        with FleetServer(_fleet_config(fault_plan=plan)) as fleet:
            _submit_trace(fleet, count=3)
            fleet.drain()
            assert fleet.admission.depth_scale == pytest.approx(1 / 3)
            quota = fleet.config.default_quota
            tightened = fleet.admission.effective_queue_depth(quota)
            assert tightened < quota.max_queue_depth
            assert tightened >= 1

    def test_tighten_admission_can_be_disabled(self):
        plan = FaultPlan(kills=[DeviceKill(0, 1e-6)])
        config = _fleet_config(fault_plan=plan, tighten_admission=False)
        with FleetServer(config) as fleet:
            _submit_trace(fleet, count=3)
            fleet.drain()
            assert fleet.admission.depth_scale == 1.0

    def test_capacity_degrade_shrinks_leases(self):
        plan = FaultPlan(degrades=[CapacityDegrade(0, 0.0, 0.25)])
        config = FleetConfig(
            num_devices=1, batch_window_s=1e-3, max_batch_size=8,
            fault_plan=plan,
        )
        with FleetServer(config) as fleet:
            _submit_trace(fleet, count=8, tenants=1, spacing_s=1e-5)
            snap = fleet.drain()
            assert fleet.devices[0].capacity_factor == 0.25
            assert snap["batching"]["max_size"] <= 2  # floor(8 * 0.25)
            assert snap["fleet"]["faults_by_op"].get("degrade") == 1

    def test_fault_plan_is_not_consumed_across_servers(self):
        """The same FaultPlan object can configure many runs (the server
        takes a fresh copy); both runs see identical faults."""
        plan = FaultPlan(op_rules=[OpFaultRule("dma", 0.4)], seed=11)

        def run():
            with FleetServer(_fleet_config(fault_plan=plan)) as fleet:
                handles = _submit_trace(fleet, count=10)
                snap = fleet.drain()
                return (
                    snap["fleet"]["faults_injected"],
                    [h.attempts for h in handles],
                )

        assert run() == run()


# ---------------------------------------------------------------------------
# Differential fault test (the PR's acceptance criterion)
# ---------------------------------------------------------------------------
class TestDifferentialFaults:
    def test_faulted_run_is_bit_identical_to_fault_free_run(self):
        """Same trace, with and without a fault storm: every completed
        response is bit-identical, and both runs' ledgers partition
        exactly across tenants and devices."""
        plan = FaultPlan(
            kills=[DeviceKill(1, 4e-4)],
            degrades=[CapacityDegrade(2, 2e-4, 0.5)],
            op_rules=[
                OpFaultRule("dma", 0.2, max_faults=6),
                OpFaultRule("compile", 0.3, max_faults=2),
                OpFaultRule("dispatch", 0.1, max_faults=3),
            ],
            seed=99,
        )

        def run(fault_plan):
            with FleetServer(_fleet_config(fault_plan=fault_plan)) as fleet:
                handles = _submit_trace(fleet, count=24, spacing_s=2e-5)
                fleet.drain()
                partition = fleet.verify_fleet_partition()
                return handles, partition

        clean_handles, clean_partition = run(None)
        faulted_handles, faulted_partition = run(plan)

        assert all(clean_partition.values()), clean_partition
        assert all(faulted_partition.values()), faulted_partition
        assert all(
            h.status is RequestStatus.COMPLETED for h in clean_handles
        )
        assert all(
            h.status is RequestStatus.COMPLETED for h in faulted_handles
        )
        # The storm actually did something.
        assert any(
            h.retries > 0 or h.migrations > 0 for h in faulted_handles
        )
        for clean, faulted in zip(clean_handles, faulted_handles):
            clean_result = clean.result()
            faulted_result = faulted.result()
            assert clean_result.keys() == faulted_result.keys()
            for name, value in clean_result.items():
                np.testing.assert_array_equal(faulted_result[name], value)

    def test_each_request_is_billed_exactly_once_under_faults(self):
        """Exactly-once: no matter how many attempts, retries and
        migrations a request suffers, it produces exactly one usage
        record (one bill) — lost attempts land in compensations, which
        reference only requests that genuinely left work on a device."""
        plan = FaultPlan(
            kills=[DeviceKill(0, 3e-4)],
            op_rules=[OpFaultRule("dma", 0.25, max_faults=5)],
            seed=5,
        )
        with FleetServer(_fleet_config(fault_plan=plan)) as fleet:
            handles = _submit_trace(fleet, count=18, spacing_s=2e-5)
            fleet.drain()
            assert any(h.retries > 0 or h.migrations > 0 for h in handles)
            usages = fleet.ledger.all_usages()
            billed_ids = [usage.request_id for usage in usages]
            # One bill per resolved request — never two, never zero.
            assert len(billed_ids) == len(set(billed_ids))
            completed_ids = {
                h.request_id
                for h in handles
                if h.status is RequestStatus.COMPLETED
            }
            assert set(billed_ids) == completed_ids
            # Compensations reference real requests and real lost work.
            for comp in fleet.ledger.compensations:
                assert comp.request_id in {h.request_id for h in handles}
                assert comp.wear_bytes > 0 or comp.energy_j > 0
            assert all(fleet.verify_fleet_partition().values())


# ---------------------------------------------------------------------------
# Handle idempotency (PR 6 satellite)
# ---------------------------------------------------------------------------
class TestHandleIdempotency:
    def _completed_handle(self):
        handle = RequestHandle(request_id=1, tenant="t", arrival_s=0.0)
        handle.mark_queued(0.0)
        handle.mark_completed(
            completed_s=1.0,
            batch_id=1,
            batch_size=1,
            report=ExecutionReport(program_name="k"),
            result={"y": np.zeros(4, dtype=np.float32)},
            device_id=0,
        )
        return handle

    def test_terminal_handle_rejects_every_transition(self):
        handle = self._completed_handle()
        before = (handle.status, handle.completed_s, handle.batch_id)
        with pytest.raises(HandleStateError, match="already completed"):
            handle.mark_completed(
                completed_s=9.0, batch_id=9, batch_size=9,
                report=ExecutionReport(program_name="k"), result={},
            )
        with pytest.raises(HandleStateError):
            handle.mark_failed(completed_s=9.0, reason="late fault")
        with pytest.raises(HandleStateError):
            handle.mark_rejected("late rejection")
        with pytest.raises(HandleStateError):
            handle.mark_queued(9.0)
        # Nothing was overwritten.
        assert (handle.status, handle.completed_s, handle.batch_id) == before

    def test_failed_and_rejected_are_terminal_too(self):
        failed = RequestHandle(request_id=2, tenant="t", arrival_s=0.0)
        failed.mark_failed(completed_s=1.0, reason="boom")
        with pytest.raises(HandleStateError, match="already failed"):
            failed.mark_completed(
                completed_s=2.0, batch_id=1, batch_size=1,
                report=ExecutionReport(program_name="k"), result={},
            )
        rejected = RequestHandle(request_id=3, tenant="t", arrival_s=0.0)
        rejected.mark_rejected("queue full")
        with pytest.raises(HandleStateError, match="already rejected"):
            rejected.mark_queued(1.0)

    def test_handle_state_error_is_a_serve_error(self):
        assert issubclass(HandleStateError, ServeError)

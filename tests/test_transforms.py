"""Tests for tiling, interchange, fusion, distribution, and device mapping."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.ir import Block, Interpreter, Program
from repro.ir.normalize import normalize_reductions
from repro.poly import build_schedule_tree, detect_scops, generate_ir
from repro.poly.schedule_tree import (
    BandNode,
    ExtensionNode,
    FilterNode,
    SequenceNode,
    validate_tree,
)
from repro.tactics import find_all_kernels, find_gemm_kernels, find_gemv_kernels
from repro.transforms import (
    FusionError,
    TilingError,
    find_fusable_groups,
    fuse_sibling_nests,
    interchange_band_chain,
    map_kernels_to_cim,
    tile_band_chain,
    tile_gemm_for_crossbar,
)
from repro.transforms.distribution import can_distribute, distribute_band, isolate_match
from repro.codegen.runtime_calls import CIM_GEMM, CIM_GEMM_BATCHED, CIM_MALLOC

PURE_GEMM_SOURCE = """
void matmul(int N, float C[N][N], float A[N][N], float B[N][N]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
}
"""


def _analyse(source):
    program = normalize_reductions(parse_program(source))
    scop = detect_scops(program)[0]
    return program, scop, build_schedule_tree(scop)


def _run(program_template, stmts, params, arrays):
    program = Program(
        name="regen",
        params=list(program_template.params),
        arrays=list(program_template.arrays),
        body=Block(stmts),
    )
    return Interpreter(program).run(params, arrays)


# ----------------------------------------------------------------------
# Tiling
# ----------------------------------------------------------------------
def test_tiling_preserves_semantics(rng):
    program, scop, tree = _analyse(PURE_GEMM_SOURCE)
    match = find_gemm_kernels(scop, tree)[0]
    bands = match.band_chain(tree)
    tile_band_chain(bands, {"i": 2, "j": 3, "k": 2})
    assert validate_tree(tree) == []
    params = {"N": 5}
    arrays = {
        "A": rng.random((5, 5), dtype=np.float32),
        "B": rng.random((5, 5), dtype=np.float32),
        "C": np.zeros((5, 5), dtype=np.float32),
    }
    reference = Interpreter(program).run(params, arrays)
    tiled = _run(program, generate_ir(tree), params, arrays)
    np.testing.assert_allclose(tiled["C"], reference["C"], rtol=1e-5)


def test_tiling_with_interchanged_tile_loops(rng):
    program, scop, tree = _analyse(PURE_GEMM_SOURCE)
    match = find_gemm_kernels(scop, tree)[0]
    tile_band = tile_gemm_for_crossbar(tree, match, crossbar_rows=3, crossbar_cols=2)
    # Listing 3 order: i_t, k_t, j_t.
    assert tile_band.dims == ["i_t", "k_t", "j_t"]
    params = {"N": 7}
    rng_local = np.random.default_rng(3)
    arrays = {
        "A": rng_local.random((7, 7), dtype=np.float32),
        "B": rng_local.random((7, 7), dtype=np.float32),
        "C": np.zeros((7, 7), dtype=np.float32),
    }
    reference = Interpreter(program).run(params, arrays)
    tiled = _run(program, generate_ir(tree), params, arrays)
    np.testing.assert_allclose(tiled["C"], reference["C"], rtol=1e-5)


def test_tiling_rejects_bad_requests():
    _, scop, tree = _analyse(PURE_GEMM_SOURCE)
    match = find_gemm_kernels(scop, tree)[0]
    bands = match.band_chain(tree)
    with pytest.raises(TilingError):
        tile_band_chain(bands, {"z": 4})
    with pytest.raises(TilingError):
        tile_band_chain(bands, {"i": 0})
    with pytest.raises(TilingError):
        tile_band_chain(bands, {"i": 2}, tile_loop_order=["i", "j"])
    with pytest.raises(TilingError):
        tile_band_chain([], {"i": 2})


def test_tiling_imperfect_nest_rejected(gemm_source):
    _, scop, tree = _analyse(gemm_source)
    match = find_gemm_kernels(scop, tree)[0]
    with pytest.raises(TilingError):
        tile_gemm_for_crossbar(tree, match)


# ----------------------------------------------------------------------
# Interchange
# ----------------------------------------------------------------------
def test_interchange_preserves_semantics(rng):
    program, scop, tree = _analyse(PURE_GEMM_SOURCE)
    match = find_gemm_kernels(scop, tree)[0]
    bands = match.band_chain(tree)
    interchange_band_chain(bands, ["k", "i", "j"])
    assert [b.dims[0] for b in match.band_chain(tree)] == ["k", "i", "j"]
    params = {"N": 4}
    arrays = {
        "A": rng.random((4, 4), dtype=np.float32),
        "B": rng.random((4, 4), dtype=np.float32),
        "C": np.zeros((4, 4), dtype=np.float32),
    }
    reference = Interpreter(program).run(params, arrays)
    swapped = _run(program, generate_ir(tree), params, arrays)
    np.testing.assert_allclose(swapped["C"], reference["C"], rtol=1e-5)


def test_interchange_rejects_non_permutation():
    from repro.transforms import InterchangeError

    _, scop, tree = _analyse(PURE_GEMM_SOURCE)
    match = find_gemm_kernels(scop, tree)[0]
    bands = match.band_chain(tree)
    with pytest.raises(InterchangeError):
        interchange_band_chain(bands, ["i", "j", "j"])


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def test_fusable_group_found_for_shared_input(two_gemms_source):
    _, scop, tree = _analyse(two_gemms_source)
    matches = find_gemm_kernels(scop, tree)
    groups = find_fusable_groups(scop, matches)
    assert len(groups) == 1
    assert groups[0].size == 2
    assert groups[0].shared_arrays() == {"A"}


def test_dependent_kernels_not_fused():
    source = """
    void f(int N, float C[N][N], float D[N][N], float A[N][N], float B[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            D[i][j] += C[i][k] * B[k][j];
    }
    """
    _, scop, tree = _analyse(source)
    matches = find_gemm_kernels(scop, tree)
    assert find_fusable_groups(scop, matches) == []


def test_require_shared_input_option(two_gemms_source):
    source_no_sharing = two_gemms_source.replace("A[i][k] * E[k][j]", "E[k][i] * E[k][j]")
    _, scop, tree = _analyse(source_no_sharing)
    matches = find_gemm_kernels(scop, tree)
    assert find_fusable_groups(scop, matches, require_shared_input=True) == []
    assert len(find_fusable_groups(scop, matches, require_shared_input=False)) == 1


def test_gemv_matches_not_grouped():
    from repro.workloads import get_kernel

    kernel = get_kernel("mvt")
    program = normalize_reductions(parse_program(kernel.source))
    scop = detect_scops(program)[0]
    tree = build_schedule_tree(scop)
    matches = find_gemv_kernels(scop, tree)
    assert find_fusable_groups(scop, matches) == []


def test_structural_fusion_of_sibling_nests(two_gemms_source, rng):
    program, scop, tree = _analyse(two_gemms_source)
    seq = tree.child
    assert isinstance(seq, SequenceNode)
    first, second = seq.children()
    fuse_sibling_nests(tree, first, second)
    assert len(seq.children()) == 1
    assert validate_tree(tree) == []
    params = {"N": 4}
    arrays = {
        "A": rng.random((4, 4), dtype=np.float32),
        "B": rng.random((4, 4), dtype=np.float32),
        "E": rng.random((4, 4), dtype=np.float32),
        "C": np.zeros((4, 4), dtype=np.float32),
        "D": np.zeros((4, 4), dtype=np.float32),
    }
    reference = Interpreter(program).run(params, arrays)
    fused = _run(program, generate_ir(tree), params, arrays)
    np.testing.assert_allclose(fused["C"], reference["C"], rtol=1e-5)
    np.testing.assert_allclose(fused["D"], reference["D"], rtol=1e-5)


# ----------------------------------------------------------------------
# Distribution
# ----------------------------------------------------------------------
def test_distribution_legality_and_mechanics(rng):
    source = """
    void f(int N, float A[N][N], float B[N][N], float x[N], float y[N], float z[N]) {
      for (int i = 0; i < N; i++) {
        y[i] = 0.0;
        z[i] = 0.0;
        for (int j = 0; j < N; j++) {
          y[i] += A[i][j] * x[j];
          z[i] += B[i][j] * x[j];
        }
      }
    }
    """
    program, scop, tree = _analyse(source)
    band_i = tree.child
    assert isinstance(band_i, BandNode)
    assert can_distribute(scop, band_i)
    distribute_band(tree, band_i)
    assert isinstance(tree.child, SequenceNode)
    assert validate_tree(tree) == []
    params = {"N": 5}
    arrays = {
        "A": rng.random((5, 5), dtype=np.float32),
        "B": rng.random((5, 5), dtype=np.float32),
        "x": rng.random(5, dtype=np.float32),
        "y": np.zeros(5, dtype=np.float32),
        "z": np.zeros(5, dtype=np.float32),
    }
    reference = Interpreter(program).run(params, arrays)
    distributed = _run(program, generate_ir(tree), params, arrays)
    np.testing.assert_allclose(distributed["y"], reference["y"], rtol=1e-5)
    np.testing.assert_allclose(distributed["z"], reference["z"], rtol=1e-5)


def test_distribution_illegal_with_backward_dependence():
    source = """
    void f(int N, float A[N], float B[N]) {
      for (int i = 0; i < N - 1; i++) {
        A[i] = B[i] + 1.0;
        B[i + 1] = A[i] * 2.0;
      }
    }
    """
    program, scop, tree = _analyse(source)
    band_i = tree.child
    assert isinstance(band_i, BandNode)
    assert not can_distribute(scop, band_i)


def test_isolate_match_enables_offload_of_shared_nest(rng):
    from repro.workloads import get_kernel

    kernel = get_kernel("bicg")
    program = normalize_reductions(parse_program(kernel.source))
    scop = detect_scops(program)[0]
    tree = build_schedule_tree(scop)
    matches = find_gemv_kernels(scop, tree)
    assert len(matches) == 2
    for match in matches:
        assert isolate_match(tree, match)
        root = match.subtree_root(tree)
        covered = {
            dim for node in root.walk() if isinstance(node, BandNode) for dim in node.dims
        }
        assert set(match.dims.values()) <= covered
    assert validate_tree(tree) == []


# ----------------------------------------------------------------------
# Device mapping
# ----------------------------------------------------------------------
def test_device_mapping_single_gemm(gemm_source):
    _, scop, tree = _analyse(gemm_source)
    matches = find_all_kernels(scop, tree)
    result = map_kernels_to_cim(tree, matches)
    assert result.any_offloaded
    assert len(result.mappings) == 1
    assert result.mappings[0].call_name == CIM_GEMM
    extensions = [n for n in tree.walk() if isinstance(n, ExtensionNode)]
    assert len(extensions) == 1
    call_names = [c.callee for c in extensions[0].calls]
    assert call_names.count(CIM_MALLOC) == 3
    assert CIM_GEMM in call_names


def test_device_mapping_emits_batched_call_for_fused_group(two_gemms_source):
    _, scop, tree = _analyse(two_gemms_source)
    matches = find_gemm_kernels(scop, tree)
    groups = find_fusable_groups(scop, matches)
    result = map_kernels_to_cim(tree, matches, groups)
    assert len(result.mappings) == 1
    assert result.mappings[0].call_name == CIM_GEMM_BATCHED
    assert result.mappings[0].shared_arrays == {"A"}
    # The second nest's subtree was removed from the sequence.
    seq_nodes = [n for n in tree.walk() if isinstance(n, SequenceNode)]
    assert all(len(s.children()) <= 1 for s in seq_nodes)


def test_device_mapping_allocates_each_array_once(two_gemms_source):
    _, scop, tree = _analyse(two_gemms_source)
    matches = find_gemm_kernels(scop, tree)
    groups = find_fusable_groups(scop, matches)
    map_kernels_to_cim(tree, matches, groups)
    extensions = [n for n in tree.walk() if isinstance(n, ExtensionNode)]
    mallocs = [
        c.args[0].array
        for ext in extensions
        for c in ext.calls
        if c.callee == CIM_MALLOC
    ]
    assert sorted(mallocs) == ["A", "B", "C", "D", "E"]

"""Differential tests: vectorized engine vs. reference interpreter.

Every PolyBench kernel is executed under both execution engines — through
the full compile + offload + emulated-system path and through the host-only
path — and in both crossbar modes.  The engines must agree *bit for bit* on
every output array and produce identical execution traces and therefore
identical energy/latency/instruction reports.
"""

import numpy as np
import pytest

from repro import CompileOptions, OffloadExecutor, compile_source
from repro.ir import Interpreter
from repro.ir.interp import ExecutionTrace
from repro.system import CimSystem, SystemConfig
from repro.workloads.polybench import KERNELS

DATASET = "MINI"

#: Engines that must match the interpreter bit for bit, trace included.
#: "native" silently degrades to the fold tier when the optional C
#: toolchain is absent — still exact, so it is always safe to test.
EXACT_ENGINES = ("vectorized", "fast", "native")


def _reports_equal(a, b) -> list[str]:
    """Field-by-field comparison of two ExecutionReports; returns diffs."""
    diffs = []
    scalar_fields = (
        "offload_instructions",
        "offload_energy_j",
        "offload_time_s",
        "accelerator_energy_j",
        "accelerator_time_s",
        "gemv_count",
        "crossbar_cell_writes",
        "crossbar_write_ops",
        "accelerator_macs",
        "dma_bytes",
    )
    for name in scalar_fields:
        if getattr(a, name) != getattr(b, name):
            diffs.append(f"{name}: {getattr(a, name)} != {getattr(b, name)}")
    host_fields = (
        "instructions",
        "flops",
        "loads",
        "stores",
        "int_ops",
        "branches",
        "time_s",
        "energy_j",
    )
    for name in host_fields:
        if getattr(a.host_estimate, name) != getattr(b.host_estimate, name):
            diffs.append(
                f"host.{name}: {getattr(a.host_estimate, name)} != "
                f"{getattr(b.host_estimate, name)}"
            )
    if a.runtime_calls != b.runtime_calls:
        diffs.append("runtime_calls differ")
    if a.accelerator_energy_breakdown != b.accelerator_energy_breakdown:
        diffs.append("energy breakdown differs")
    return diffs


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
@pytest.mark.parametrize("crossbar_mode", ["ideal", "quantized"])
def test_offloaded_execution_is_engine_invariant(kernel_name, crossbar_mode):
    kernel = KERNELS[kernel_name]
    result = compile_source(kernel.source)
    params = kernel.params(DATASET)
    arrays = kernel.arrays(DATASET, seed=11)

    outputs = {}
    reports = {}
    for engine in ("interpreter",) + EXACT_ENGINES:
        system = CimSystem(SystemConfig(crossbar_mode=crossbar_mode))
        executor = OffloadExecutor(system, engine=engine)
        outputs[engine], reports[engine] = executor.run(result.program, params, arrays)

    for engine in EXACT_ENGINES:
        for name in outputs["interpreter"]:
            np.testing.assert_array_equal(
                outputs["interpreter"][name],
                outputs[engine][name],
                err_msg=(
                    f"{kernel_name}/{crossbar_mode}/{engine}: "
                    f"array {name!r} not bit-identical"
                ),
            )
        diffs = _reports_equal(reports["interpreter"], reports[engine])
        assert not diffs, (
            f"{kernel_name}/{crossbar_mode}/{engine}: report mismatch: {diffs}"
        )


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_host_only_execution_is_engine_invariant(kernel_name):
    """With offloading disabled the engines execute the loop nests
    themselves — the strongest test of the vectorized lowering."""
    kernel = KERNELS[kernel_name]
    result = compile_source(kernel.source, options=CompileOptions.host_only())
    params = kernel.params(DATASET)
    arrays = kernel.arrays(DATASET, seed=23)

    outputs = {}
    reports = {}
    for engine in ("interpreter",) + EXACT_ENGINES:
        executor = OffloadExecutor(engine=engine)
        outputs[engine], reports[engine] = executor.run(result.program, params, arrays)

    for engine in EXACT_ENGINES:
        for name in outputs["interpreter"]:
            np.testing.assert_array_equal(
                outputs["interpreter"][name],
                outputs[engine][name],
                err_msg=f"{kernel_name}/{engine}: array {name!r} not bit-identical",
            )
        diffs = _reports_equal(reports["interpreter"], reports[engine])
        assert not diffs, f"{kernel_name}/{engine}: report mismatch: {diffs}"


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_raw_program_traces_match(kernel_name):
    """Un-compiled source programs: identical traces, identical arrays."""
    from repro.frontend import parse_program

    kernel = KERNELS[kernel_name]
    program = parse_program(kernel.source)
    params = kernel.params(DATASET)
    arrays = kernel.arrays(DATASET, seed=5)

    from repro.ir.engine import make_engine

    interp = Interpreter(program)
    out_i = interp.run(params, {k: v.copy() for k, v in arrays.items()})
    for engine_name in EXACT_ENGINES:
        engine = make_engine(program, engine=engine_name)
        out_v = engine.run(params, {k: v.copy() for k, v in arrays.items()})
        for name in out_i:
            np.testing.assert_array_equal(out_i[name], out_v[name])
        assert interp.trace == engine.trace
        assert isinstance(engine.trace, ExecutionTrace)


@pytest.mark.parametrize("kernel_name", ["gemm", "2mm", "3mm", "mvt"])
def test_fast_engine_is_numerically_close(kernel_name):
    """The einsum mode reassociates sums: approximately equal, not exact."""
    kernel = KERNELS[kernel_name]
    result = compile_source(kernel.source, options=CompileOptions.host_only())
    params = kernel.params("SMALL")
    arrays = kernel.arrays("SMALL", seed=3)

    ref, ref_report = OffloadExecutor(engine="interpreter").run(
        result.program, params, arrays
    )
    fast, fast_report = OffloadExecutor(engine="vectorized-fast").run(
        result.program, params, arrays
    )
    for name in kernel.output_arrays:
        np.testing.assert_allclose(fast[name], ref[name], rtol=1e-4)
    # Trace-derived reports stay exact even in fast mode.
    assert not _reports_equal(ref_report, fast_report)

"""Property-based record -> serialize -> replay coverage (PR 7 satellite).

Hypothesis generates random workloads (tenant mixes, arrival spacings,
quota assignments) and random fault storms (reusing the strategies of
``tests/test_fleet_faults_property.py``), and the trace layer must
always uphold:

* **losslessness** — serializing a recorded trace to JSONL and loading
  it back yields the identical event stream (payload bytes included);
* **determinism** — replaying the loaded trace through a fresh server
  reproduces the recording bit-for-bit (responses, schedules, bills);
* **stability** — the replayed trace re-serializes to the exact same
  JSONL text, so a second-generation replay diffs clean too.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import DeviceKill, FaultPlan, FleetConfig, FleetServer, OpFaultRule
from repro.serve import CimServer, ServerConfig, TenantQuota
from repro.trace import TraceRecorder, TraceReplayer, diff_traces, loads_trace

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

PARAMS = {"M": 16, "N": 16}
NUM_DEVICES = 3

# Fault-storm strategies, as in tests/test_fleet_faults_property.py.
kills = st.lists(
    st.builds(
        DeviceKill,
        device_id=st.integers(0, NUM_DEVICES - 1),
        at_s=st.floats(0.0, 2e-3, allow_nan=False, allow_infinity=False),
    ),
    max_size=NUM_DEVICES,
    unique_by=lambda kill: kill.device_id,
)

op_rules = st.lists(
    st.builds(
        OpFaultRule,
        op=st.sampled_from(["dma", "compile", "dispatch"]),
        probability=st.floats(0.0, 0.6),
        device_id=st.one_of(st.none(), st.integers(0, NUM_DEVICES - 1)),
        max_faults=st.one_of(st.none(), st.integers(1, 6)),
    ),
    max_size=3,
)

fault_plans = st.builds(
    FaultPlan,
    kills=kills,
    op_rules=op_rules,
    seed=st.integers(0, 2**16),
)

workloads = st.fixed_dictionaries(
    {
        "num_requests": st.integers(2, 8),
        "num_tenants": st.integers(1, 3),
        "spacing_s": st.sampled_from([1e-5, 3e-5, 8e-5]),
        "data_seed": st.integers(0, 2**16),
        "tight_quota": st.booleans(),
    }
)


def _drive(server, workload) -> None:
    """Submit the generated workload (optionally with a tight quota that
    forces rejections) and drain the run."""
    if workload["tight_quota"]:
        server.set_quota("tenant0", TenantQuota(max_queue_depth=1))
    rng = np.random.default_rng(workload["data_seed"])
    matrix = rng.integers(0, 8, size=(16, 16)).astype(np.float32)
    for index in range(workload["num_requests"]):
        server.submit(
            f"tenant{index % workload['num_tenants']}",
            GEMV_SOURCE,
            PARAMS,
            {
                "A": matrix,
                "x": rng.integers(0, 8, size=16).astype(np.float32),
                "y": np.zeros(16, dtype=np.float32),
            },
            arrival_s=index * workload["spacing_s"],
        )
    server.drain()


def _assert_roundtrip(trace) -> None:
    """Serialize -> load -> replay; every stage must be lossless."""
    text = trace.dumps()
    loaded = loads_trace(text)
    # Losslessness: the parsed stream is the recorded stream.
    assert diff_traces(trace, loaded).identical
    assert loaded.dumps() == text
    # Determinism: a fresh server re-serves the workload identically.
    result = TraceReplayer(loaded).replay()
    assert result.identical, result.diff.summary()
    # Stability: the replayed trace serializes to the same JSONL text.
    assert result.replayed.dumps() == text


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=workloads)
def test_serve_roundtrip_random_workloads(workload):
    recorder = TraceRecorder()
    server = recorder.attach(
        CimServer(ServerConfig(batch_window_s=1e-4, max_batch_size=4))
    )
    _drive(server, workload)
    _assert_roundtrip(recorder.finalize())


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=workloads, plan=fault_plans)
def test_fleet_roundtrip_random_fault_storms(workload, plan):
    recorder = TraceRecorder()
    fleet = recorder.attach(
        FleetServer(
            FleetConfig(
                num_devices=NUM_DEVICES,
                batch_window_s=1e-4,
                max_batch_size=4,
                placement="wear-aware",
                fault_plan=plan,
                max_attempts=4,
            )
        )
    )
    _drive(fleet, workload)
    trace = recorder.finalize()
    _assert_roundtrip(trace)
    # The storm's terminal facts survive the round trip: every submitted
    # request has a response, and the partition verdicts hold.
    assert trace.responses().keys() == {
        s["request_id"] for s in trace.submissions()
    }
    assert all(b["partition_ok"] for b in trace.device_bills().values())

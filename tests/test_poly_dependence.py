"""Tests for dependence analysis."""

import pytest

from repro.frontend import parse_program
from repro.ir.normalize import normalize_reductions
from repro.poly import compute_dependences, detect_scops
from repro.poly.dependence import DependenceKind, kernels_independent, nest_permutable


def _scop(source):
    return detect_scops(normalize_reductions(parse_program(source)))[0]


def test_gemm_reduction_has_zero_distance_self_dependence(gemm_scop):
    deps = compute_dependences(gemm_scop)
    update = gemm_scop.statements[1].name
    self_flow = [
        d for d in deps
        if d.source == update and d.target == update and d.kind is DependenceKind.FLOW
    ]
    assert self_flow
    assert all(d.distance == (0, 0, 0) for d in self_flow)
    assert all(d.is_loop_independent for d in self_flow)


def test_init_to_update_flow_dependence(gemm_scop):
    init, update = (s.name for s in gemm_scop.statements)
    deps = compute_dependences(gemm_scop)
    assert any(
        d.source == init and d.target == update and d.kind is DependenceKind.FLOW
        for d in deps
    )


def test_loop_carried_dependence_distance():
    scop = _scop(
        """
        void f(int N, float A[N]) {
          for (int i = 1; i < N; i++)
            A[i] = A[i - 1] + 1.0;
        }
        """
    )
    deps = compute_dependences(scop)
    flow = [d for d in deps if d.kind is DependenceKind.FLOW]
    assert flow
    carried = [d for d in flow if d.distance is not None and any(d.distance)]
    assert carried
    assert carried[0].carried_by() == "i"


def test_disjoint_constant_subscripts_have_no_dependence():
    scop = _scop(
        """
        void f(int N, float A[N][4]) {
          for (int i = 0; i < N; i++) {
            A[i][0] = 1.0;
            A[i][1] = 2.0;
          }
        }
        """
    )
    deps = compute_dependences(scop)
    cross = [
        d for d in deps
        if d.source != d.target and d.distance is not None
    ]
    assert cross == []


def test_read_read_is_not_a_dependence():
    scop = _scop(
        """
        void f(int N, float A[N], float B[N], float C[N]) {
          for (int i = 0; i < N; i++) {
            B[i] = A[i];
            C[i] = A[i];
          }
        }
        """
    )
    deps = compute_dependences(scop)
    assert not any(d.array == "A" for d in deps)


def test_kernels_independent_positive(two_gemms_source):
    scop = _scop(two_gemms_source)
    first = next(s for s in scop.statements if "C" in s.write_arrays())
    second = next(s for s in scop.statements if "D" in s.write_arrays())
    assert kernels_independent(first, second)


def test_kernels_not_independent_when_output_consumed():
    scop = _scop(
        """
        void f(int N, float C[N][N], float D[N][N], float A[N][N], float B[N][N]) {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                D[i][j] += C[i][k] * B[k][j];
        }
        """
    )
    first = next(s for s in scop.statements if "C" in s.write_arrays())
    second = next(s for s in scop.statements if "D" in s.write_arrays())
    assert not kernels_independent(first, second)


def test_kernels_not_independent_when_input_overwritten():
    scop = _scop(
        """
        void f(int N, float C[N][N], float A[N][N], float B[N][N]) {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              A[i][j] = 0.0;
        }
        """
    )
    first = next(s for s in scop.statements if "C" in s.write_arrays())
    second = next(s for s in scop.statements if s.write_arrays() == {"A"})
    assert not kernels_independent(first, second)


def test_gemm_nest_is_fully_permutable(gemm_scop):
    update = gemm_scop.statements[1]
    assert nest_permutable(gemm_scop, update.name, update.loop_vars)


def test_recurrence_nest_is_not_permutable():
    scop = _scop(
        """
        void f(int N, float A[N][N]) {
          for (int i = 1; i < N; i++)
            for (int j = 1; j < N; j++)
              A[i][j] = A[i - 1][j] + A[i][j - 1];
        }
        """
    )
    stmt = scop.statements[0]
    # Distances are non-negative (1,0) and (0,1): still permutable in the
    # classic sense; but a negative-distance example must not be.
    assert nest_permutable(scop, stmt.name, stmt.loop_vars)

    scop2 = _scop(
        """
        void f(int N, float A[N][N]) {
          for (int i = 1; i < N; i++)
            for (int j = 0; j < N - 1; j++)
              A[i][j] = A[i - 1][j + 1] + 1.0;
        }
        """
    )
    stmt2 = scop2.statements[0]
    assert not nest_permutable(scop2, stmt2.name, stmt2.loop_vars)

"""Corrupt-disk-entry hardening of :class:`KernelCompileCache` (PR 6
satellite).

A crashed writer, disk rot or a hostile tenant can leave a truncated or
garbage pickle under a cache key.  Reading one must degrade to a plain
cache miss — never an exception — and the poisoned file must be
quarantined (renamed to ``*.pkl.corrupt``) so it is read at most once and
the slot becomes storable again.  The cross-process stress test hammers
one disk directory from several processes while a saboteur keeps
corrupting entries mid-flight.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.compiler import KernelCompileCache


def _store(tmp_path, key: str, payload) -> None:
    cache = KernelCompileCache(capacity=4, disk_dir=tmp_path)
    cache.put(key, payload)


@pytest.mark.parametrize(
    "corruption",
    [b"", b"\x80", b"not a pickle at all", b"\x80\x05\x95\xff\xff"],
    ids=["empty", "one-byte", "garbage", "truncated"],
)
def test_corrupt_disk_entry_degrades_to_miss_and_is_quarantined(
    tmp_path, corruption
):
    _store(tmp_path, "kernel-a", ("payload", "kernel-a"))
    path = tmp_path / "kernel-a.pkl"
    path.write_bytes(corruption)

    fresh = KernelCompileCache(capacity=4, disk_dir=tmp_path)
    assert fresh.get("kernel-a") is None  # miss, not an exception
    assert fresh.misses == 1
    assert fresh.disk_corruptions == 1
    # The poison is quarantined: never re-read, slot reusable.
    assert not path.exists()
    assert (tmp_path / "kernel-a.pkl.corrupt").exists()

    # The slot is immediately storable and servable again.
    fresh.put("kernel-a", ("payload", "kernel-a"))
    rebuilt = KernelCompileCache(capacity=4, disk_dir=tmp_path)
    assert rebuilt.get("kernel-a") == ("payload", "kernel-a")
    assert rebuilt.disk_corruptions == 0


def test_truncated_real_pickle_degrades_to_miss(tmp_path):
    """A torn write of a genuine entry (prefix of a valid pickle)."""
    _store(tmp_path, "kernel-b", {"program": list(range(100))})
    path = tmp_path / "kernel-b.pkl"
    whole = path.read_bytes()
    path.write_bytes(whole[: len(whole) // 2])

    fresh = KernelCompileCache(capacity=4, disk_dir=tmp_path)
    assert fresh.get("kernel-b") is None
    assert fresh.disk_corruptions == 1
    assert not path.exists()


def test_corruption_counter_only_counts_corrupt_files(tmp_path):
    cache = KernelCompileCache(capacity=4, disk_dir=tmp_path)
    assert cache.get("never-stored") is None  # plain miss: no file at all
    cache.put("good", 123)
    assert cache.get("good") == 123
    assert cache.disk_corruptions == 0


def test_in_memory_hit_ignores_corrupt_disk_entry(tmp_path):
    cache = KernelCompileCache(capacity=4, disk_dir=tmp_path)
    cache.put("hot", ("payload", "hot"))
    (tmp_path / "hot.pkl").write_bytes(b"garbage")
    # The in-memory LRU still holds the value; disk is never touched.
    assert cache.get("hot") == ("payload", "hot")
    assert cache.disk_corruptions == 0


def _hammer_process(disk_dir: str, worker: int, rounds: int, queue) -> None:
    """Worker: get/put a shared key set against one disk directory while
    entries keep getting corrupted underneath it."""
    try:
        cache = KernelCompileCache(capacity=4, disk_dir=disk_dir)
        keys = [f"shared-{i}" for i in range(6)]
        for round_no in range(rounds):
            for key in keys:
                value = cache.get(key)
                if value is None:
                    cache.put(key, ("payload", key))
                elif value != ("payload", key):
                    queue.put(f"worker {worker}: cross-talk on {key}: {value!r}")
                    return
            if worker == 0:
                # Saboteur: overwrite one entry with garbage mid-flight.
                victim = keys[round_no % len(keys)]
                try:
                    with open(os.path.join(disk_dir, f"{victim}.pkl"), "wb") as fh:
                        fh.write(b"\x80corrupt")
                except OSError:
                    pass
                cache.clear()  # force disk reads next round
        queue.put(None)
    except Exception as exc:  # pragma: no cover - only on regression
        queue.put(f"worker {worker}: {type(exc).__name__}: {exc}")


def test_cross_process_corruption_stress(tmp_path):
    """Several processes share one cache directory; a saboteur corrupts
    entries continuously.  No process may ever crash or observe a value
    that was not stored under the key it asked for."""
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_hammer_process, args=(str(tmp_path), i, 15, queue))
        for i in range(3)
    ]
    for proc in workers:
        proc.start()
    outcomes = [queue.get(timeout=120) for _ in workers]
    for proc in workers:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    errors = [outcome for outcome in outcomes if outcome is not None]
    assert not errors, errors

    # After the dust settles, a fresh cache reading every key sees either
    # the correct payload or a clean miss (the saboteur's last round may
    # leave a corrupt entry nobody re-read yet; loading it here must
    # quarantine it, never crash or serve a wrong value).
    sweep = KernelCompileCache(capacity=8, disk_dir=tmp_path)
    for i in range(6):
        value = sweep.get(f"shared-{i}")
        assert value in (None, ("payload", f"shared-{i}"))

    # The sweep quarantined any leftover poison, so every surviving .pkl
    # is now a valid pickle of its own key's payload (atomic writes: no
    # torn state).
    for path in tmp_path.glob("*.pkl"):
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        assert payload == ("payload", path.stem)

"""Tests for iteration domains and access relations."""

import pytest

from repro.poly.access import AccessKind, accesses_of_statement
from repro.poly.affine import AffineExpr
from repro.poly.domain import IterationDomain, LoopDim
from repro.frontend import parse_program
from repro.poly import detect_scops


def make_domain():
    return IterationDomain(
        (
            LoopDim("i", AffineExpr.constant_expr(0), AffineExpr.param("N")),
            LoopDim("j", AffineExpr.constant_expr(0), AffineExpr.param("M")),
        )
    )


def test_domain_basic_properties():
    domain = make_domain()
    assert domain.depth == 2
    assert domain.var_names == ("i", "j")
    assert domain.has_dim("i") and not domain.has_dim("k")


def test_cardinality_rectangular():
    domain = make_domain()
    assert domain.cardinality({"N": 4, "M": 5}) == 20


def test_cardinality_empty_when_bounds_cross():
    domain = make_domain()
    assert domain.cardinality({"N": 0, "M": 5}) == 0


def test_trip_count_with_step():
    dim = LoopDim("i", AffineExpr.constant_expr(0), AffineExpr.constant_expr(10), step=3)
    assert dim.trip_count({}) == 4


def test_points_enumeration_order():
    domain = IterationDomain(
        (
            LoopDim("i", AffineExpr.constant_expr(0), AffineExpr.constant_expr(2)),
            LoopDim("j", AffineExpr.constant_expr(0), AffineExpr.constant_expr(2)),
        )
    )
    assert list(domain.points({})) == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_triangular_domain_cardinality():
    domain = IterationDomain(
        (
            LoopDim("i", AffineExpr.constant_expr(0), AffineExpr.constant_expr(4)),
            LoopDim("j", AffineExpr.constant_expr(0), AffineExpr.var("i")),
        )
    )
    # sum over i of i = 0+1+2+3
    assert domain.cardinality({}) == 6


def test_rename_updates_bounds_and_var():
    domain = IterationDomain(
        (
            LoopDim("i", AffineExpr.constant_expr(0), AffineExpr.constant_expr(4)),
            LoopDim("j", AffineExpr.constant_expr(0), AffineExpr.var("i")),
        )
    )
    renamed = domain.rename("i", "ii")
    assert renamed.var_names == ("ii", "j")
    assert renamed.dim("j").upper.used_vars() == {"ii"}


def test_project_onto_subset():
    domain = make_domain()
    projected = domain.project_onto(["j"])
    assert projected.var_names == ("j",)


def test_accesses_of_gemm_update(gemm_scop):
    update = gemm_scop.statements[1]
    accesses = update.accesses
    kinds = sorted(str(a.kind) for a in accesses)
    assert kinds.count("read") == 3 and kinds.count("write") == 1
    arrays = sorted(a.array for a in accesses)
    assert arrays == ["A", "B", "C", "C"]


def test_access_is_simple_and_single_vars(gemm_scop):
    update = gemm_scop.statements[1]
    a_access = next(a for a in update.accesses if a.array == "A")
    assert a_access.is_simple()
    assert a_access.single_vars() == ("i", "k")


def test_non_simple_access_detected(conv_source):
    program = parse_program(conv_source)
    scop = detect_scops(program)[0]
    update = next(s for s in scop.statements if "img" in s.read_arrays())
    img_access = next(a for a in update.accesses if a.array == "img")
    assert not img_access.is_simple()
    assert img_access.single_vars() is None
    assert img_access.index_vars()[0] == frozenset({"i", "p"})


def test_access_rename_var(gemm_scop):
    update = gemm_scop.statements[1]
    a_access = next(a for a in update.accesses if a.array == "A")
    renamed = a_access.rename_var("k", "kk")
    assert renamed.single_vars() == ("i", "kk")

"""Tests for the GEMM / GEMV / conv2d pattern finders."""

import pytest

from repro.frontend import parse_program
from repro.ir.expr import FloatConst, ParamRef
from repro.ir.normalize import normalize_reductions
from repro.poly import build_schedule_tree, detect_scops
from repro.tactics import (
    find_all_kernels,
    find_conv2d_kernels,
    find_gemm_kernels,
    find_gemv_kernels,
)
from repro.workloads import get_kernel


def _analyse(source):
    program = normalize_reductions(parse_program(source))
    scop = detect_scops(program)[0]
    return scop, build_schedule_tree(scop)


def test_gemm_detected_with_alpha_beta(gemm_source):
    scop, tree = _analyse(gemm_source)
    matches = find_gemm_kernels(scop, tree)
    assert len(matches) == 1
    match = matches[0]
    assert match.kind == "gemm"
    assert match.arrays == {"C": "C", "A": "A", "B": "B"}
    assert match.dims == {"i": "i", "j": "j", "k": "k"}
    assert match.init_stmt is not None
    assert isinstance(match.alpha, ParamRef) and match.alpha.name == "alpha"
    assert isinstance(match.beta, ParamRef) and match.beta.name == "beta"
    assert not match.trans_a and not match.trans_b


def test_gemm_extent_expressions(gemm_source):
    scop, tree = _analyse(gemm_source)
    match = find_gemm_kernels(scop, tree)[0]
    assert str(match.m_expr) == "M"
    assert str(match.n_expr) == "N"
    assert str(match.k_expr) == "K"
    assert match.extent("i", {"M": 7, "N": 3, "K": 2}) == 7
    assert match.macs({"M": 2, "N": 3, "K": 4}) == 24


def test_gemm_without_init_has_beta_one(two_gemms_source):
    scop, tree = _analyse(two_gemms_source)
    matches = find_gemm_kernels(scop, tree)
    assert len(matches) == 2
    for match in matches:
        assert match.init_stmt is None
        assert isinstance(match.beta, FloatConst) and match.beta.value == 1.0


def test_transposed_gemm_detected():
    source = """
    void f(int M, int N, int K, float C[M][N], float A[K][M], float B[K][N]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[k][i] * B[k][j];
    }
    """
    scop, tree = _analyse(source)
    match = find_gemm_kernels(scop, tree)[0]
    assert match.trans_a and not match.trans_b


def test_non_contraction_not_matched_as_gemm():
    source = """
    void f(int N, float C[N][N], float A[N][N], float B[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += A[i][k] + B[k][j];
    }
    """
    scop, tree = _analyse(source)
    assert find_gemm_kernels(scop, tree) == []


def test_gemv_detected(gemv_source):
    scop, tree = _analyse(gemv_source)
    matches = find_gemv_kernels(scop, tree)
    assert len(matches) == 1
    match = matches[0]
    assert match.arrays == {"y": "y", "A": "A", "x": "x"}
    assert match.init_stmt is not None
    assert isinstance(match.beta, FloatConst) and match.beta.value == 0.0
    assert not match.trans_a


def test_transposed_gemv_detected():
    kernel = get_kernel("mvt")
    program = normalize_reductions(parse_program(kernel.source))
    scops = detect_scops(program)
    scop = scops[0]
    tree = build_schedule_tree(scop)
    matches = find_gemv_kernels(scop, tree)
    assert len(matches) == 2
    assert sorted(m.trans_a for m in matches) == [False, True]


def test_conv2d_detected(conv_source):
    scop, tree = _analyse(conv_source)
    matches = find_conv2d_kernels(scop, tree)
    assert len(matches) == 1
    match = matches[0]
    assert match.arrays["out"] == "out"
    assert match.arrays["img"] == "img"
    assert match.arrays["W"] == "W"
    assert set(match.dims) == {"i", "j", "p", "q"}
    assert match.init_stmt is not None


def test_find_all_kernels_claims_each_statement_once(gemm_source):
    scop, tree = _analyse(gemm_source)
    matches = find_all_kernels(scop, tree)
    assert len(matches) == 1
    assert matches[0].kind == "gemm"   # GEMM shadows a possible GEMV reading


def test_gemm_preferred_over_gemv_for_3d_contraction(two_gemms_source):
    scop, tree = _analyse(two_gemms_source)
    matches = find_all_kernels(scop, tree)
    assert {m.kind for m in matches} == {"gemm"}


def test_subtree_root_covers_whole_nest_for_gemm(gemm_source):
    scop, tree = _analyse(gemm_source)
    match = find_gemm_kernels(scop, tree)[0]
    root = match.subtree_root(tree)
    from repro.poly.schedule_tree import BandNode

    assert isinstance(root, BandNode) and root.dims == ["i"]
    assert root is tree.child


def test_band_chain_for_update_statement(gemm_source):
    scop, tree = _analyse(gemm_source)
    match = find_gemm_kernels(scop, tree)[0]
    chain = match.band_chain(tree)
    assert [b.dims[0] for b in chain] == ["i", "j", "k"]


def test_polybench_kernel_detection_counts():
    expected = {
        "gemm": {"gemm": 1},
        "2mm": {"gemm": 2},
        "3mm": {"gemm": 3},
        "conv": {"conv2d": 1},
        "gesummv": {"gemv": 2},
        "bicg": {"gemv": 2},
        "mvt": {"gemv": 2},
        "atax": {"gemv": 2},
    }
    for name, counts in expected.items():
        kernel = get_kernel(name)
        program = normalize_reductions(parse_program(kernel.source))
        found: dict[str, int] = {}
        for scop in detect_scops(program):
            tree = build_schedule_tree(scop)
            for match in find_all_kernels(scop, tree):
                found[match.kind] = found.get(match.kind, 0) + 1
        assert found == counts, f"{name}: {found} != {counts}"

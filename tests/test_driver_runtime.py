"""Tests for the CMA allocator, page table, kernel driver, and runtime API."""

import numpy as np
import pytest

from repro.driver import CMAAllocator, CMAError, CimDriver, DriverError, PageTable, TranslationError
from repro.driver.ioctl import IoctlCommand
from repro.hw.context_regs import Register, Status
from repro.runtime import CimRuntime, CimRuntimeError
from repro.system import CimSystem, SystemConfig


# ----------------------------------------------------------------------
# CMA allocator
# ----------------------------------------------------------------------
def test_cma_alloc_is_aligned_and_within_region():
    cma = CMAAllocator(base=0x1000, size=4096, alignment=64)
    block = cma.alloc(100)
    assert block.address % 64 == 0
    assert block.address >= 0x1000
    assert block.size >= 100
    assert cma.used_bytes == block.size


def test_cma_free_coalesces_and_allows_reuse():
    cma = CMAAllocator(base=0, size=1024, alignment=64)
    a = cma.alloc(256)
    b = cma.alloc(256)
    c = cma.alloc(256)
    cma.free(a.address)
    cma.free(b.address)
    # After coalescing, a 512-byte allocation must fit in the freed space.
    d = cma.alloc(512)
    assert d.address == a.address
    cma.free(c.address)
    cma.free(d.address)
    assert cma.free_bytes == 1024
    assert cma.live_allocations == 0


def test_cma_exhaustion_raises():
    cma = CMAAllocator(base=0, size=1024)
    cma.alloc(512)
    cma.alloc(448)
    with pytest.raises(CMAError):
        cma.alloc(256)
    assert cma.failed_allocations == 1


def test_cma_double_free_rejected():
    cma = CMAAllocator(base=0, size=1024)
    block = cma.alloc(64)
    cma.free(block.address)
    with pytest.raises(CMAError):
        cma.free(block.address)


def test_cma_invalid_requests():
    with pytest.raises(ValueError):
        CMAAllocator(base=0, size=0)
    cma = CMAAllocator(base=0, size=1024)
    with pytest.raises(CMAError):
        cma.alloc(0)


# ----------------------------------------------------------------------
# Page table
# ----------------------------------------------------------------------
def test_page_table_translation_roundtrip():
    table = PageTable()
    virt = table.map(physical_base=0x8000, size=100)
    assert table.translate(virt) == 0x8000
    assert table.translate(virt + 40) == 0x8000 + 40
    assert table.is_mapped(virt, 100)


def test_page_table_unmapped_access_raises():
    table = PageTable()
    with pytest.raises(TranslationError):
        table.translate(0x12345)
    virt = table.map(0x8000, 64)
    table.unmap(virt)
    with pytest.raises(TranslationError):
        table.translate(virt)


def test_page_table_range_crossing_guard_page_rejected():
    table = PageTable(page_size=4096)
    virt = table.map(0x8000, 4096)
    with pytest.raises(TranslationError):
        table.translate(virt, 2 * 4096 + 1)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def test_driver_requires_open(system):
    driver = system.driver
    with pytest.raises(DriverError):
        driver.alloc(64)


def test_driver_alloc_translate_free(system):
    driver = system.driver
    driver.open()
    virt, phys = driver.alloc(1024)
    assert driver.translate(virt) == phys
    assert system.memory.cma_region.contains(phys, 1024)
    assert driver.buffer_size(virt) >= 1024
    driver.free(virt)
    with pytest.raises(DriverError):
        driver.free(virt)


def test_driver_overhead_charged_for_calls(system):
    driver = system.driver
    before = driver.overhead.instructions
    driver.open()
    virt, _ = driver.alloc(4096)
    assert driver.overhead.instructions > before
    energy_per_inst = driver.host_model.energy_per_instruction_j
    assert driver.overhead.energy_j == pytest.approx(
        driver.overhead.instructions * energy_per_inst
    )


def test_driver_flush_cost_scales_with_lines(system):
    driver = system.driver
    driver.open()
    before = driver.overhead.instructions
    driver._flush_caches(64 * 100)
    delta_small = driver.overhead.instructions - before
    before = driver.overhead.instructions
    driver._flush_caches(64 * 200)
    delta_large = driver.overhead.instructions - before
    assert delta_large == pytest.approx(2 * delta_small)


def test_driver_ioctl_dispatch(system):
    driver = system.driver
    driver.open()
    virt, phys = driver.ioctl(IoctlCommand.CIM_ALLOC, size=256)
    assert driver.translate(virt) == phys
    driver.ioctl(IoctlCommand.CIM_FREE, virtual=virt)
    with pytest.raises(DriverError):
        driver.ioctl(IoctlCommand.CIM_FREE, virtual=virt)


# ----------------------------------------------------------------------
# Runtime API
# ----------------------------------------------------------------------
def test_runtime_requires_init(system):
    runtime = system.runtime
    with pytest.raises(CimRuntimeError):
        runtime.cim_malloc(64)


def test_runtime_malloc_copy_roundtrip(system, rng):
    runtime = system.runtime
    runtime.cim_init(0)
    data = rng.random((16, 16), dtype=np.float32)
    buffer = runtime.cim_malloc(data.nbytes)
    runtime.cim_host_to_dev(buffer, data)
    back = runtime.cim_dev_to_host(buffer, data.shape)
    np.testing.assert_array_equal(back, data)
    runtime.cim_free(buffer)
    assert runtime.live_buffers == 0


def test_runtime_rejects_oversized_copy(system, rng):
    runtime = system.runtime
    runtime.cim_init(0)
    buffer = runtime.cim_malloc(64)
    with pytest.raises(CimRuntimeError):
        runtime.cim_host_to_dev(buffer, rng.random(1024, dtype=np.float32))


def test_runtime_double_free_rejected(system):
    runtime = system.runtime
    runtime.cim_init(0)
    buffer = runtime.cim_malloc(64)
    runtime.cim_free(buffer)
    with pytest.raises(CimRuntimeError):
        runtime.cim_free(buffer)


def test_runtime_unknown_device_rejected(system):
    with pytest.raises(CimRuntimeError):
        system.runtime.cim_init(3)


# ----------------------------------------------------------------------
# BLAS runtime calls
# ----------------------------------------------------------------------
def _device_array(system, array):
    buffer = system.runtime.cim_malloc(array.nbytes)
    system.runtime.cim_host_to_dev(buffer, array)
    return buffer


def test_blas_sgemm_end_to_end(system, rng):
    system.runtime.cim_init(0)
    a = rng.random((12, 10), dtype=np.float32)
    b = rng.random((10, 9), dtype=np.float32)
    c = rng.random((12, 9), dtype=np.float32)
    buf_a, buf_b, buf_c = (_device_array(system, x) for x in (a, b, c))
    stats = system.blas.sgemm(False, False, 12, 9, 10, 2.0, buf_a, 10, buf_b, 9,
                              0.5, buf_c, 9)
    out = system.runtime.cim_dev_to_host(buf_c, (12, 9))
    ref = 2.0 * (a.astype(np.float64) @ b.astype(np.float64)) + 0.5 * c
    np.testing.assert_allclose(out, ref, rtol=1e-4)
    assert stats.accelerator.gemv_count == 9
    assert stats.flush_bytes > 0


def test_blas_sgemv_end_to_end(system, rng):
    system.runtime.cim_init(0)
    a = rng.random((14, 11), dtype=np.float32)
    x = rng.random(11, dtype=np.float32)
    y = np.zeros(14, dtype=np.float32)
    buf_a, buf_x, buf_y = (_device_array(system, arr) for arr in (a, x, y))
    system.blas.sgemv(False, 14, 11, 1.0, buf_a, 11, buf_x, 0.0, buf_y)
    out = system.runtime.cim_dev_to_host(buf_y, (14,))
    np.testing.assert_allclose(out, a @ x, rtol=1e-4)


def test_blas_batched_gemm_reuses_shared_operand(system, rng):
    system.runtime.cim_init(0)
    n = 16
    a = rng.random((n, n), dtype=np.float32)
    b = rng.random((n, n), dtype=np.float32)
    e = rng.random((n, n), dtype=np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    d = np.zeros((n, n), dtype=np.float32)
    buf = {name: _device_array(system, arr) for name, arr in
           [("a", a), ("b", b), ("e", e), ("c", c), ("d", d)]}
    stats = system.blas.gemm_batched(
        False,
        False,
        [
            {"m": n, "n": n, "k": n, "alpha": 1.0, "beta": 0.0,
             "a": buf["a"], "b": buf["b"], "c": buf["c"]},
            {"m": n, "n": n, "k": n, "alpha": 1.0, "beta": 0.0,
             "a": buf["a"], "b": buf["e"], "c": buf["d"]},
        ],
    )
    out_c = system.runtime.cim_dev_to_host(buf["c"], (n, n))
    out_d = system.runtime.cim_dev_to_host(buf["d"], (n, n))
    np.testing.assert_allclose(out_c, a @ b, rtol=1e-4)
    np.testing.assert_allclose(out_d, a @ e, rtol=1e-4)
    # The shared A operand is written to the crossbar only once.
    assert stats.accelerator.crossbar_cell_writes == n * n
    assert stats.batch_size == 2


def test_blas_conv2d_end_to_end(system, rng):
    system.runtime.cim_init(0)
    oh, ow, kh, kw = 6, 7, 3, 3
    img = rng.random((oh + kh - 1, ow + kw - 1), dtype=np.float32)
    weights = rng.random((kh, kw), dtype=np.float32)
    out = np.zeros((oh, ow), dtype=np.float32)
    buf_img, buf_w, buf_out = (_device_array(system, x) for x in (img, weights, out))
    system.blas.conv2d(oh, ow, kh, kw, 1.0, buf_img, buf_w, 0.0, buf_out)
    result = system.runtime.cim_dev_to_host(buf_out, (oh, ow))
    ref = np.zeros((oh, ow))
    for p in range(kh):
        for q in range(kw):
            ref += weights[p, q] * img[p : p + oh, q : q + ow]
    np.testing.assert_allclose(result, ref, rtol=1e-4)


def test_blas_rejects_undersized_buffers(system, rng):
    system.runtime.cim_init(0)
    small = system.runtime.cim_malloc(64)
    with pytest.raises(CimRuntimeError):
        system.blas.sgemm(False, False, 64, 64, 64, 1.0, small, 64, small, 64,
                          0.0, small, 64)

"""Tests for the wall-clock process-pool gateway (PR 9 tentpole).

These spawn real worker processes and measure real time, so counts are
kept small.  The contract under test:

* end-to-end serving through the pool with exact accounting,
* lifecycle discipline (start/submit/drain ordering, idempotent drain),
* admission backpressure,
* and the headline fault model — a worker killed mid-request loses its
  process and its in-flight work, the gateway compensates and retries
  on a survivor, the tenant is billed exactly once, the accounting
  partition stays exact, and the response is bit-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.gateway import AsyncGateway, GatewayConfig
from repro.gateway.loadgen import GEMV_SOURCE, synthetic_gemv_workload
from repro.gateway.server import GatewayError
from repro.gateway.wire import FAULT_EXIT_CODE


def run(coroutine):
    return asyncio.run(coroutine)


def submit_item(gateway, item, fault=None):
    return gateway.submit_nowait(
        item.tenant, item.source, item.params, item.arrays, fault=fault
    )


class TestLifecycle:
    def test_submit_before_start_raises(self):
        gateway = AsyncGateway(GatewayConfig(num_workers=1))
        with pytest.raises(GatewayError, match="not started"):
            gateway.submit_nowait("acme", GEMV_SOURCE)

    def test_submit_after_drain_raises(self):
        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                await gateway.drain()
                with pytest.raises(GatewayError, match="draining"):
                    gateway.submit_nowait("acme", GEMV_SOURCE)
                # Drain is idempotent.
                await gateway.drain()

        run(scenario())

    def test_config_validation(self):
        with pytest.raises(GatewayError, match="at least one worker"):
            AsyncGateway(GatewayConfig(num_workers=0))
        with pytest.raises(GatewayError, match="max_attempts"):
            AsyncGateway(GatewayConfig(max_attempts=0))


class TestServing:
    def test_end_to_end_pool_serving(self):
        workload = synthetic_gemv_workload(num_tenants=3, seed=1)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=2)) as gateway:
                futures = [
                    submit_item(gateway, workload(index)) for index in range(9)
                ]
                responses = await asyncio.gather(*futures)
                await gateway.drain()
                return responses, gateway.verify_partition(), gateway.snapshot()

        responses, checks, snapshot = run(scenario())
        assert [r.status for r in responses] == ["completed"] * 9
        assert sorted(r.request_id for r in responses) == list(range(1, 10))
        # Every request's GEMV is exact: integer-valued operands.
        for index, response in enumerate(responses):
            item = workload(index)
            expected = item.arrays["A"] @ item.arrays["x"]
            assert np.array_equal(response.result["y"], expected)
        assert all(checks.values()), checks
        gw = snapshot["gateway"]
        assert gw["alive_workers"] == 2
        assert sum(row["served"] for row in gw["workers"].values()) == 9
        assert snapshot["requests"]["completed"] == 9

    def test_backpressure_rejects_over_limit(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=2)

        async def scenario():
            config = GatewayConfig(num_workers=1, max_pending=2)
            async with AsyncGateway(config) as gateway:
                # A burst without yielding: 1 dispatches, 2 queue, the
                # rest must be rejected synchronously.
                futures = [
                    submit_item(gateway, workload(index)) for index in range(6)
                ]
                responses = await asyncio.gather(*futures)
                await gateway.drain()
                return responses, gateway.ledger

        responses, ledger = run(scenario())
        statuses = [r.status for r in responses]
        assert statuses.count("rejected") == 3
        assert statuses.count("completed") == 3
        rejected = next(r for r in responses if r.status == "rejected")
        assert "backpressure" in rejected.reason
        assert ledger.account("tenant-0").rejected == 3


class TestCrashRecovery:
    def test_worker_death_mid_request_recovers_exactly_once(self):
        """The satellite gate: kill a worker mid-request; the request
        completes on a survivor with exactly-once billing and a
        bit-identical result."""
        workload = synthetic_gemv_workload(num_tenants=2, seed=3)
        faulted_index = 3

        async def scenario(inject: bool):
            async with AsyncGateway(GatewayConfig(num_workers=2)) as gateway:
                futures = []
                for index in range(8):
                    fault = (
                        "die-mid-request"
                        if inject and index == faulted_index
                        else None
                    )
                    futures.append(submit_item(gateway, workload(index), fault))
                responses = await asyncio.gather(*futures)
                await gateway.drain()
                return (
                    responses,
                    gateway.verify_partition(),
                    gateway.snapshot(),
                    gateway.ledger,
                    {w.worker_id: w.process.exitcode for w in gateway._workers},
                )

        clean_responses, *_ = run(scenario(inject=False))
        responses, checks, snapshot, ledger, exitcodes = run(scenario(inject=True))

        assert [r.status for r in responses] == ["completed"] * 8
        faulted = responses[faulted_index]
        # Served on the second attempt, by the surviving worker.
        assert faulted.attempt == 2
        dead = [wid for wid, code in exitcodes.items() if code == FAULT_EXIT_CODE]
        assert len(dead) == 1
        assert faulted.worker_id not in dead
        assert snapshot["gateway"]["alive_workers"] == 1

        # Bit-identical to the uninterrupted run, request by request.
        for clean, recovered in zip(clean_responses, responses):
            assert clean.result.keys() == recovered.result.keys()
            for name in clean.result:
                assert (
                    clean.result[name].tobytes()
                    == recovered.result[name].tobytes()
                )

        # Exactly-once billing: one usage record for the killed request,
        # plus the zero-work compensation as the audit trail.
        usages = [
            u for u in ledger.all_usages()
            if u.request_id == faulted.request_id
        ]
        assert len(usages) == 1
        compensations = [
            c for c in ledger.compensations
            if c.request_id == faulted.request_id
        ]
        assert len(compensations) == 1
        assert compensations[0].op == "worker-crash"
        assert compensations[0].accelerator_energy_j == 0.0
        assert compensations[0].device_id == dead[0]

        # The partition reconciles on the survivor *and* the dead worker.
        assert all(checks.values()), checks

        fleet = snapshot["fleet"]
        assert fleet["faults_injected"] == 1
        assert fleet["faults_recovered"] == 1
        assert fleet["retries"] == 1

    def test_death_before_dispatch_recovers_too(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=4)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=2)) as gateway:
                futures = [
                    submit_item(
                        gateway,
                        workload(index),
                        fault="die-before-dispatch" if index == 0 else None,
                    )
                    for index in range(4)
                ]
                responses = await asyncio.gather(*futures)
                await gateway.drain()
                return responses, gateway.verify_partition()

        responses, checks = run(scenario())
        assert [r.status for r in responses] == ["completed"] * 4
        assert responses[0].attempt == 2
        assert all(checks.values()), checks

    def test_total_pool_loss_fails_pending_requests(self):
        workload = synthetic_gemv_workload(num_tenants=1, seed=5)

        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                future = submit_item(
                    gateway, workload(0), fault="die-mid-request"
                )
                response = await future
                await gateway.drain()
                return response, gateway.alive_workers

        response, alive = run(scenario())
        assert response.status == "failed"
        assert "no surviving gateway workers" in response.reason
        assert alive == []

"""Tests for schedule-tree construction, invariants, and AST regeneration."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.ir import Block, Interpreter, Program
from repro.ir.normalize import normalize_reductions
from repro.poly import build_schedule_tree, detect_scops, generate_ir
from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    SequenceNode,
    replace_node,
    tree_to_string,
    validate_tree,
)


def test_canonical_gemm_tree_shape(gemm_tree):
    assert isinstance(gemm_tree, DomainNode)
    band_i = gemm_tree.child
    assert isinstance(band_i, BandNode) and band_i.dims == ["i"]
    band_j = band_i.child
    assert isinstance(band_j, BandNode) and band_j.dims == ["j"]
    seq = band_j.child
    assert isinstance(seq, SequenceNode) and len(seq.children()) == 2
    assert all(isinstance(c, FilterNode) for c in seq.children())


def test_validate_canonical_tree(gemm_tree):
    assert validate_tree(gemm_tree) == []


def test_tree_to_string_mentions_all_nodes(gemm_tree):
    text = tree_to_string(gemm_tree)
    assert "DomainNode" in text and "BandNode" in text and "LeafNode" in text


def test_active_statements_respects_filters(gemm_tree):
    leaves = [n for n in gemm_tree.walk() if isinstance(n, LeafNode)]
    actives = [leaf.active_statements() for leaf in leaves]
    assert all(len(a) == 1 for a in actives)
    assert actives[0] != actives[1]


def test_band_ancestor_dims(gemm_tree):
    leaves = [n for n in gemm_tree.walk() if isinstance(n, LeafNode)]
    update_leaf = max(leaves, key=lambda l: len(l.band_ancestor_dims()))
    assert update_leaf.band_ancestor_dims() == ["i", "j", "k"]


def test_copy_is_deep_and_parents_consistent(gemm_tree):
    clone = gemm_tree.copy()
    assert clone is not gemm_tree
    assert validate_tree(clone) == []
    # Mutating the clone must not affect the original.
    band = next(n for n in clone.walk() if isinstance(n, BandNode))
    band.dims = ["z"]
    original_dims = [n.dims for n in gemm_tree.walk() if isinstance(n, BandNode)]
    assert ["z"] not in original_dims


def test_replace_node_swaps_subtree(gemm_tree):
    band_i = gemm_tree.child
    extension = ExtensionNode([])
    replace_node(band_i, extension)
    assert gemm_tree.child is extension
    assert extension.parent is gemm_tree


def test_replace_root_fails(gemm_tree):
    with pytest.raises(ValueError):
        replace_node(gemm_tree, ExtensionNode([]))


def test_sequence_rejects_non_filter_children():
    seq = SequenceNode([FilterNode({"S0"}, LeafNode(["S0"]))])
    with pytest.raises(TypeError):
        seq.set_child(0, LeafNode(["S0"]))


def test_validation_catches_empty_band_and_filter(gemm_scop):
    tree = DomainNode(gemm_scop, BandNode([], FilterNode(set(), LeafNode())))
    problems = validate_tree(tree)
    assert any("no dimensions" in p for p in problems)
    assert any("empty statement set" in p for p in problems)


def test_mark_nodes_are_transparent_for_codegen(gemm_tree, gemm_scop):
    band_i = gemm_tree.child
    mark = MarkNode("gemm", payload=None, child=band_i)
    gemm_tree.set_child(0, mark)
    stmts = generate_ir(gemm_tree)
    assert len(stmts) == 1  # still a single top-level loop


def test_generate_ir_roundtrip_preserves_semantics(gemm_program, rng):
    program = gemm_program
    scop = detect_scops(program)[0]
    tree = build_schedule_tree(scop)
    regenerated = Program(
        name="gemm_regen",
        params=list(program.params),
        arrays=list(program.arrays),
        body=Block(generate_ir(tree)),
    )
    params = {"M": 4, "N": 5, "K": 3, "alpha": 1.1, "beta": 0.7}
    arrays = {
        "A": rng.random((4, 3), dtype=np.float32),
        "B": rng.random((3, 5), dtype=np.float32),
        "C": rng.random((4, 5), dtype=np.float32),
    }
    out_original = Interpreter(program).run(params, arrays)
    out_regen = Interpreter(regenerated).run(params, arrays)
    np.testing.assert_allclose(out_regen["C"], out_original["C"], rtol=1e-6)


def test_generate_ir_roundtrip_for_multi_nest_scop(two_gemms_source, rng):
    program = normalize_reductions(parse_program(two_gemms_source))
    scop = detect_scops(program)[0]
    tree = build_schedule_tree(scop)
    regenerated = Program(
        name="regen",
        params=list(program.params),
        arrays=list(program.arrays),
        body=Block(generate_ir(tree)),
    )
    params = {"N": 4}
    arrays = {
        name: rng.random((4, 4), dtype=np.float32)
        for name in ("A", "B", "E")
    }
    arrays["C"] = np.zeros((4, 4), dtype=np.float32)
    arrays["D"] = np.zeros((4, 4), dtype=np.float32)
    out_original = Interpreter(program).run(params, arrays)
    out_regen = Interpreter(regenerated).run(params, arrays)
    np.testing.assert_allclose(out_regen["C"], out_original["C"], rtol=1e-6)
    np.testing.assert_allclose(out_regen["D"], out_original["D"], rtol=1e-6)


def test_extension_node_calls_emitted_in_order(gemm_tree):
    from repro.ir.stmt import CallStmt

    calls = [CallStmt("first", []), CallStmt("second", [])]
    replace_node(gemm_tree.child, ExtensionNode(calls))
    stmts = generate_ir(gemm_tree)
    assert [s.callee for s in stmts] == ["first", "second"]

"""Property-based fault-injection tests for the fleet tier (PR 6
satellite).

Hypothesis generates arbitrary fault scenarios — device deaths and
transient op faults at random simulated times, random fleet shapes and
placement policies — and the fleet must always uphold the exactly-once
invariants:

* no request is ever billed twice (one usage record per completed
  request, none for unresolved ones);
* every device's physical ledger reconciles exactly with billed usages
  plus fault compensations (fleet-wide partition);
* every handle reaches a terminal state (no request is lost);
* completed responses are bit-identical to a fault-free run of the same
  trace.

The GEMV trace is deterministic (fixed numpy seed) so any failure
shrinks to a minimal fault scenario, not a data artefact.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import (
    DeviceKill,
    FaultPlan,
    FleetConfig,
    FleetServer,
    OpFaultRule,
)
from repro.serve import RequestStatus

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

PARAMS = {"M": 16, "N": 16}
NUM_REQUESTS = 10
NUM_DEVICES = 3


def _run_trace(fault_plan):
    """Serve one fixed 10-request GEMV trace; returns (handles, fleet)."""
    config = FleetConfig(
        num_devices=NUM_DEVICES,
        batch_window_s=1e-4,
        max_batch_size=4,
        placement="wear-aware",
        fault_plan=fault_plan,
        max_attempts=4,
    )
    rng = np.random.default_rng(1234)
    matrix = rng.random((16, 16), dtype=np.float32)
    with FleetServer(config) as fleet:
        handles = [
            fleet.submit(
                f"tenant{index % 2}",
                GEMV_SOURCE,
                PARAMS,
                {
                    "A": matrix,
                    "x": rng.random(16, dtype=np.float32),
                    "y": np.zeros(16, dtype=np.float32),
                },
                arrival_s=index * 3e-5,
            )
            for index in range(NUM_REQUESTS)
        ]
        fleet.drain()
        return handles, fleet


#: Completed payloads of the fault-free reference run, computed once —
#: every generated fault scenario is differentially checked against it.
_REFERENCE: dict = {}


def _reference_results():
    if not _REFERENCE:
        handles, _ = _run_trace(None)
        assert all(h.status is RequestStatus.COMPLETED for h in handles)
        _REFERENCE["results"] = [h.result() for h in handles]
    return _REFERENCE["results"]


kills = st.lists(
    st.builds(
        DeviceKill,
        device_id=st.integers(0, NUM_DEVICES - 1),
        at_s=st.floats(0.0, 2e-3, allow_nan=False, allow_infinity=False),
    ),
    max_size=NUM_DEVICES,
    unique_by=lambda kill: kill.device_id,
)

op_rules = st.lists(
    st.builds(
        OpFaultRule,
        op=st.sampled_from(["dma", "compile", "dispatch"]),
        probability=st.floats(0.0, 0.6),
        device_id=st.one_of(st.none(), st.integers(0, NUM_DEVICES - 1)),
        max_faults=st.one_of(st.none(), st.integers(1, 6)),
    ),
    max_size=3,
)

fault_plans = st.builds(
    FaultPlan,
    kills=kills,
    op_rules=op_rules,
    seed=st.integers(0, 2**16),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=fault_plans)
def test_random_fault_storms_preserve_exactly_once_accounting(plan):
    handles, fleet = _run_trace(plan)

    # 1. Every request reaches a terminal state — none is lost in a
    #    retry heap, a dead device's lease, or an abandoned queue.
    assert all(h.done for h in handles)

    # 2. No double billing: exactly one usage record per completed
    #    request and none for requests that never completed (failed
    #    requests of a dead fleet carry no usage; failed executions on a
    #    live device do — both resolve FAILED, so compare against the
    #    billed set itself for uniqueness).
    usages = fleet.ledger.all_usages()
    billed_ids = [usage.request_id for usage in usages]
    assert len(billed_ids) == len(set(billed_ids))
    completed_ids = {
        h.request_id for h in handles if h.status is RequestStatus.COMPLETED
    }
    assert completed_ids <= set(billed_ids)

    # 3. Fleet-wide partition: every device's physical wear/energy/work
    #    ledger reconciles exactly with billed usages + compensations.
    partition = fleet.verify_fleet_partition()
    assert all(partition.values()), {
        name: ok for name, ok in partition.items() if not ok
    }

    # 4. Integer wear bookkeeping: billed + compensated equals physical,
    #    device by device, by exact integer comparison.
    for device in fleet.devices:
        billed = sum(
            u.wear_bytes for u in fleet.ledger.device_usages(device.device_id)
        )
        compensated = sum(
            c.wear_bytes
            for c in fleet.ledger.device_compensations(device.device_id)
        )
        assert (
            billed + compensated
            == device.system.accelerator.total_cell_writes()
        )

    # 5. Differential check: whatever the storm did, completed responses
    #    are bit-identical to the fault-free run of the same trace.
    for handle, reference in zip(handles, _reference_results()):
        if handle.status is not RequestStatus.COMPLETED:
            continue
        result = handle.result()
        assert result.keys() == reference.keys()
        for name, value in reference.items():
            np.testing.assert_array_equal(result[name], value)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    probability=st.floats(0.05, 0.5),
)
def test_transient_storms_without_deaths_always_complete(seed, probability):
    """With healthy devices and bounded transient fault rules, retries
    always converge: every request completes (max_faults caps the storm
    below the retry budget) and recovery is reflected in the metrics."""
    plan = FaultPlan(
        op_rules=[OpFaultRule("dma", probability, max_faults=3)], seed=seed
    )
    handles, fleet = _run_trace(plan)
    assert all(h.status is RequestStatus.COMPLETED for h in handles)
    snapshot = fleet.metrics.snapshot()
    stats = snapshot["fleet"]
    assert stats["faults_unrecovered"] == 0
    if stats["faults_injected"]:
        assert stats["retries"] >= 1
        assert stats["faults_recovered"] >= 1
    assert all(fleet.verify_fleet_partition().values())

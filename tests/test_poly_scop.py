"""Tests for SCoP detection."""

import pytest

from repro.frontend import parse_program
from repro.ir.normalize import normalize_reductions
from repro.poly import detect_scops


def test_gemm_is_one_scop_with_two_statements(gemm_program):
    scops = detect_scops(gemm_program)
    assert len(scops) == 1
    assert len(scops[0].statements) == 2
    assert len(scops[0].nests) == 1


def test_consecutive_nests_grouped_into_one_scop(two_gemms_source):
    program = normalize_reductions(parse_program(two_gemms_source))
    scops = detect_scops(program)
    assert len(scops) == 1
    assert len(scops[0].nests) == 2
    nest_indices = {s.nest_index for s in scops[0].statements}
    assert nest_indices == {0, 1}


def test_non_affine_subscript_breaks_scop():
    source = """
    void f(int N, float A[N], float B[N]) {
      for (int i = 0; i < N; i++)
        A[i * i] = B[i];
    }
    """
    program = parse_program(source)
    assert detect_scops(program) == []


def test_indirect_access_breaks_scop():
    source = """
    void f(int N, float A[N], float B[N], int idx[N]) {
      for (int i = 0; i < N; i++)
        A[i] = B[idx[i]];
    }
    """
    program = parse_program(source)
    assert detect_scops(program) == []


def test_scalar_write_breaks_scop():
    source = """
    void f(int N, float A[N]) {
      for (int i = 0; i < N; i++)
        t = A[i];
    }
    """
    program = parse_program(source)
    assert detect_scops(program) == []


def test_affine_and_non_affine_nests_split_scops():
    source = """
    void f(int N, float A[N], float B[N]) {
      for (int i = 0; i < N; i++)
        A[i] = B[i];
      for (int i = 0; i < N; i++)
        A[i * i] = B[i];
      for (int i = 0; i < N; i++)
        B[i] = A[i];
    }
    """
    program = parse_program(source)
    scops = detect_scops(program)
    assert len(scops) == 2
    assert all(len(s.nests) == 1 for s in scops)


def test_scop_read_and_write_sets(gemm_scop):
    assert gemm_scop.arrays_written() == {"C"}
    assert gemm_scop.arrays_read() == {"A", "B", "C"}


def test_domain_of_innermost_statement(gemm_scop):
    update = gemm_scop.statements[1]
    assert update.domain.var_names == ("i", "j", "k")
    assert update.domain.cardinality({"M": 2, "N": 3, "K": 4}) == 24


def test_statement_lookup_by_name(gemm_scop):
    name = gemm_scop.statements[0].name
    assert gemm_scop.statement(name) is gemm_scop.statements[0]
    with pytest.raises(KeyError):
        gemm_scop.statement("does_not_exist")


def test_triangular_loop_is_still_affine():
    source = """
    void f(int N, float A[N][N]) {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < i; j++)
          A[i][j] = 0.0;
    }
    """
    program = parse_program(source)
    scops = detect_scops(program)
    assert len(scops) == 1
    domain = scops[0].statements[0].domain
    assert domain.cardinality({"N": 4}) == 6

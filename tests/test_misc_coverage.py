"""Additional coverage: IR visitors, runtime-call rendering, options, errors."""

import numpy as np
import pytest

from repro.codegen.runtime_calls import (
    BatchedGemmCallArgs,
    Conv2DCallArgs,
    CopyCallArgs,
    GemmCallArgs,
    GemvCallArgs,
    InitCallArgs,
    MallocCallArgs,
)
from repro.compiler import CompileOptions
from repro.hw.microengine import Conv2DRequest, GemmRequest
from repro.ir.expr import ArrayRef, BinOp, IntConst, ParamRef, VarRef
from repro.ir.stmt import Assign, Block, Loop
from repro.ir.visitor import IRVisitor, rename_arrays, substitute
from repro.workloads import PAPER_KERNELS, get_kernel


# ----------------------------------------------------------------------
# IR visitors
# ----------------------------------------------------------------------
def test_substitute_replaces_variables():
    expr = BinOp("+", VarRef("i"), BinOp("*", VarRef("j"), IntConst(2)))
    replaced = substitute(expr, {"i": VarRef("ii"), "j": IntConst(5)})
    assert replaced.free_vars() == {"ii"}
    assert "5" in str(replaced)


def test_rename_arrays_in_statement():
    stmt = Assign(
        target=ArrayRef("C", [VarRef("i")]),
        rhs=ArrayRef("A", [VarRef("i")]),
        reduction="+",
    )
    renamed = rename_arrays(Block([stmt]), {"A": "A_dev"})
    inner = renamed.stmts[0]
    assert inner.rhs.name == "A_dev"
    assert inner.target.name == "C"


def test_visitor_dispatch(gemm_program):
    class CountLoops(IRVisitor):
        def __init__(self):
            self.loops = 0

        def visit_Loop(self, node):
            self.loops += 1
            self.generic_visit(node)

    counter = CountLoops()
    counter.visit(gemm_program.body)
    assert counter.loops == 3


# ----------------------------------------------------------------------
# Runtime call argument rendering (Listing 1 fidelity)
# ----------------------------------------------------------------------
def test_runtime_call_arg_rendering():
    m, n, k = ParamRef("M"), ParamRef("N"), ParamRef("K")
    gemm = GemmCallArgs(
        trans_a=False, trans_b=True, m=m, n=n, k=k,
        alpha=ParamRef("alpha"), buffer_a="cim_A", lda=k,
        buffer_b="cim_B", ldb=n, beta=ParamRef("beta"), buffer_c="cim_C", ldc=n,
        array_a="A", array_b="B", array_c="C",
    )
    text = str(gemm)
    assert text.startswith("CimNoTrans, CimTrans, M, N, K, &alpha, cim_A")
    assert str(InitCallArgs(0)) == "0"
    assert "(void**)&cim_A" in str(MallocCallArgs("cim_A", "A", m))
    assert str(CopyCallArgs("cim_C", "C", m)) == "cim_C, C, M"
    gemv = GemvCallArgs(
        trans_a=True, m=m, n=n, alpha=ParamRef("alpha"), buffer_a="cim_A",
        lda=n, buffer_x="cim_x", beta=ParamRef("beta"), buffer_y="cim_y",
    )
    assert str(gemv).startswith("CimTrans, M, N, &alpha")
    conv = Conv2DCallArgs(
        out_h=m, out_w=n, filter_h=IntConst(3), filter_w=IntConst(3),
        alpha=ParamRef("alpha"), buffer_img="cim_img", buffer_w="cim_W",
        beta=ParamRef("beta"), buffer_out="cim_out",
    )
    assert "cim_img, cim_W" in str(conv)
    batched = BatchedGemmCallArgs((gemm, gemm))
    assert "{cim_A, cim_A}" in str(batched)
    assert batched.trans_b is True
    with pytest.raises(ValueError):
        BatchedGemmCallArgs(())


# ----------------------------------------------------------------------
# Compile options helpers
# ----------------------------------------------------------------------
def test_compile_options_presets():
    host_only = CompileOptions.host_only()
    assert not host_only.enable_offload
    selective = CompileOptions.selective(threshold=10.0)
    assert selective.min_macs_per_write == 10.0
    assert CompileOptions().wants_kind("gemm")
    assert not CompileOptions(offload_kinds=("gemm",)).wants_kind("gemv")


# ----------------------------------------------------------------------
# Micro-engine request validation
# ----------------------------------------------------------------------
def test_gemm_request_validation():
    request = GemmRequest(m=0, n=1, k=1, addr_a=0, addr_b=0, addr_c=0,
                          lda=1, ldb=1, ldc=1)
    with pytest.raises(ValueError):
        request.validate()
    wrong_elem = GemmRequest(m=1, n=1, k=1, addr_a=0, addr_b=0, addr_c=0,
                             lda=1, ldb=1, ldc=1, elem_size=8)
    with pytest.raises(ValueError):
        wrong_elem.validate()


def test_conv_request_validation():
    bad = Conv2DRequest(out_h=4, out_w=4, filter_h=3, filter_w=3,
                        img_h=4, img_w=6, addr_img=0, addr_filter=0, addr_out=0)
    with pytest.raises(ValueError):
        bad.validate()
    good = Conv2DRequest(out_h=4, out_w=4, filter_h=3, filter_w=3,
                         img_h=6, img_w=6, addr_img=0, addr_filter=0, addr_out=0)
    good.validate()


def test_oversized_filter_rejected_by_microengine(system, rng):
    system.runtime.cim_init(0)
    taps = system.accelerator.tile.rows + 1
    # A filter with more taps than crossbar rows cannot be made resident.
    img = rng.random((600, 600), dtype=np.float32)
    with pytest.raises(Exception):
        request = Conv2DRequest(
            out_h=2, out_w=2, filter_h=taps, filter_w=1,
            img_h=taps + 1, img_w=2, addr_img=0, addr_filter=0, addr_out=0,
        )
        system.accelerator.micro_engine.run_conv2d(request)


# ----------------------------------------------------------------------
# Workload metadata sanity
# ----------------------------------------------------------------------
def test_paper_kernel_categories_match_figure6_grouping():
    gemm_like = {"2mm", "3mm", "gemm", "conv"}
    for name in PAPER_KERNELS:
        kernel = get_kernel(name)
        expected = "gemm-like" if name in gemm_like else "gemv-like"
        assert kernel.category == expected


def test_kernel_sources_parse_and_offload_consistently():
    from repro import compile_source

    for name in PAPER_KERNELS:
        kernel = get_kernel(name)
        result = compile_source(kernel.source, size_hint=kernel.params("MINI"))
        assert result.report.offloaded_kernels >= 1, name
        # Every offloaded kernel emits at least malloc + compute + copy-back.
        assert len(result.report.runtime_calls_emitted) >= 1

"""Tests for arrival plans and the open-loop load generator (PR 9).

Arrival plans are pure data (seeded, deterministic, validated); the
open-loop generator is exercised against a real two-process pool at a
small request count — these are wall-clock tests, kept short.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.gateway import (
    AsyncGateway,
    GatewayConfig,
    run_open_loop,
    synthetic_gemv_workload,
    trace_workload,
)
from repro.trace.arrivals import ArrivalPlan, poisson_plan, trace_plan
from repro.trace.schema import load_trace

GOLDEN = "tests/traces/serve_multitenant.jsonl"


class TestArrivalPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ArrivalPlan(kind="poisson", times_s=())
        with pytest.raises(ValueError, match="negative"):
            ArrivalPlan(kind="poisson", times_s=(-0.1, 0.0))
        with pytest.raises(ValueError, match="sorted"):
            ArrivalPlan(kind="poisson", times_s=(1.0, 0.5))

    def test_rate_and_duration(self):
        plan = ArrivalPlan(kind="poisson", times_s=(0.0, 1.0, 2.0))
        assert len(plan) == 3
        assert plan.duration_s == 2.0
        # (n - 1) arrivals over the span: 2 inter-arrival gaps in 2 s.
        assert plan.mean_rate_rps == pytest.approx(1.0)


class TestPoissonPlan:
    def test_deterministic_per_seed(self):
        a = poisson_plan(100, rate_rps=50.0, seed=4)
        b = poisson_plan(100, rate_rps=50.0, seed=4)
        c = poisson_plan(100, rate_rps=50.0, seed=5)
        assert a.times_s == b.times_s
        assert a.times_s != c.times_s

    def test_shape(self):
        plan = poisson_plan(500, rate_rps=100.0, seed=0)
        assert len(plan) == 500
        assert plan.kind == "poisson"
        assert plan.times_s[0] == 0.0
        assert list(plan.times_s) == sorted(plan.times_s)
        # Mean inter-arrival ~ 1/rate (law of large numbers, loose bound).
        assert plan.mean_rate_rps == pytest.approx(100.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_plan(0, rate_rps=10.0)
        with pytest.raises(ValueError):
            poisson_plan(10, rate_rps=0.0)


class TestTracePlan:
    def test_follows_the_recorded_pattern(self):
        trace = load_trace(GOLDEN)
        plan = trace_plan(trace)
        assert plan.kind == "trace"
        assert len(plan) == len(trace.submissions())
        assert plan.times_s[0] == 0.0

    def test_tiling_extends_the_pattern(self):
        trace = load_trace(GOLDEN)
        base = trace_plan(trace)
        tiled = trace_plan(trace, num_requests=3 * len(base) + 1)
        assert len(tiled) == 3 * len(base) + 1
        assert list(tiled.times_s) == sorted(tiled.times_s)

    def test_amplify_compresses_time(self):
        trace = load_trace(GOLDEN)
        slow = trace_plan(trace, amplify=1.0)
        fast = trace_plan(trace, amplify=10.0)
        assert fast.duration_s == pytest.approx(slow.duration_s / 10.0)

    def test_jitter_is_seeded_and_keeps_order(self):
        trace = load_trace(GOLDEN)
        a = trace_plan(trace, jitter_s=1e-3, seed=1)
        b = trace_plan(trace, jitter_s=1e-3, seed=1)
        c = trace_plan(trace, jitter_s=1e-3, seed=2)
        assert a.times_s == b.times_s
        assert a.times_s != c.times_s
        assert list(a.times_s) == sorted(a.times_s)
        assert min(a.times_s) >= 0.0


class TestWorkloads:
    def test_synthetic_cycles_tenants_deterministically(self):
        workload = synthetic_gemv_workload(num_tenants=3, seed=7)
        again = synthetic_gemv_workload(num_tenants=3, seed=7)
        assert workload(0).tenant == "tenant-0"
        assert workload(4).tenant == "tenant-1"
        assert (
            workload(2).arrays["A"].tobytes() == again(2).arrays["A"].tobytes()
        )
        # Integer-valued float32 operands: exact on any machine.
        for name, value in workload(0).arrays.items():
            assert np.array_equal(value, np.round(value)), name

    def test_trace_workload_replays_submission_bytes(self):
        trace = load_trace(GOLDEN)
        workload = trace_workload(trace)
        submissions = trace.submissions()
        first = workload(0)
        assert first.tenant == submissions[0]["tenant"]
        assert first.source == submissions[0]["source"]
        # Cycles past the end of the recording.
        wrapped = workload(len(submissions))
        assert wrapped.tenant == submissions[0]["tenant"]
        assert (
            wrapped.arrays["A"].tobytes() == first.arrays["A"].tobytes()
            if "A" in first.arrays
            else True
        )


class TestOpenLoop:
    def test_small_open_loop_run(self):
        async def scenario():
            async with AsyncGateway(GatewayConfig(num_workers=2)) as gateway:
                report = await run_open_loop(
                    gateway,
                    poisson_plan(24, rate_rps=500.0, seed=0),
                    synthetic_gemv_workload(seed=0),
                )
                await gateway.drain()
                return report, gateway.verify_partition()

        report, checks = asyncio.run(scenario())
        assert report.offered == 24
        assert report.completed == 24
        assert report.failed == 0 and report.rejected == 0
        assert report.served_fraction == 1.0
        assert report.duration_s > 0.0
        assert 0.0 < report.latency_p50_s <= report.latency_p99_s
        assert report.latency_p99_s <= report.latency_max_s
        assert all(checks.values()), checks
        workers = report.snapshot["gateway"]["workers"]
        assert len(workers) == 2
        assert sum(row["served"] for row in workers.values()) == 24

    def test_stop_event_closes_admission(self):
        async def scenario():
            stop = asyncio.Event()
            stop.set()
            async with AsyncGateway(GatewayConfig(num_workers=1)) as gateway:
                report = await run_open_loop(
                    gateway,
                    poisson_plan(50, rate_rps=10.0, seed=0),
                    synthetic_gemv_workload(seed=0),
                    stop=stop,
                )
                return report

        report = asyncio.run(scenario())
        assert report.offered == 0
        assert report.completed == 0

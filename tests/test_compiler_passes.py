"""Tests for the pass-manager subsystem (repro.compiler.passes).

The heart of this file is the pipeline-equivalence differential test: the
pass-based default pipeline must reproduce the frozen legacy monolith
(:mod:`repro.compiler.legacy`) bit-identically — program IR, decisions,
fusion groups, tiled kernels, runtime calls — on every PolyBench workload
and across the option space.  Both compilers receive the *same* parsed
program object so statement names (drawn from a global counter) align.
"""

from __future__ import annotations

import pytest

from repro.compiler import (
    CompileOptions,
    PipelineError,
    TdoCimCompiler,
    compile_source,
)
from repro.compiler.legacy import compile_monolithic
from repro.compiler.passes import (
    NAMED_PIPELINES,
    AlwaysOffload,
    BuildScheduleTreesPass,
    DetectScopsPass,
    IsolatePass,
    MatchKernelsPass,
    NeverOffload,
    NormalizeReductionsPass,
    ParsePass,
    PassManager,
    SelectOffloadPass,
    ThresholdPolicy,
    TilingPass,
    build_pipeline,
    estimated_intensity,
    resolve_pass_names,
)
from repro.eval.lifetime import SHARED_INPUT_GEMMS_SOURCE
from repro.frontend import parse_program
from repro.ir.printer import to_source
from repro.workloads import get_kernel, kernel_names

UNCACHED = dict(enable_compile_cache=False)


def _compile_both(source, options, size_hint=None):
    """Compile one parsed program through both implementations."""
    program = parse_program(source)
    pipelined = TdoCimCompiler(options)._compile_uncached(program, size_hint)
    legacy = compile_monolithic(program, options, size_hint)
    return pipelined, legacy


def _assert_identical(pipelined, legacy):
    assert to_source(pipelined.program) == to_source(legacy.program)
    assert to_source(pipelined.source_program) == to_source(legacy.source_program)
    report_a, report_b = pipelined.report, legacy.report
    assert report_a.program == report_b.program
    assert report_a.scop_count == report_b.scop_count
    assert report_a.decisions == report_b.decisions
    assert report_a.fusion_groups == report_b.fusion_groups
    assert report_a.tiled_kernels == report_b.tiled_kernels
    assert report_a.runtime_calls_emitted == report_b.runtime_calls_emitted
    assert len(pipelined.scops) == len(legacy.scops)
    assert len(pipelined.trees) == len(legacy.trees)
    assert [m.update_stmt for m in pipelined.matches] == [
        m.update_stmt for m in legacy.matches
    ]
    assert [m.kind for m in pipelined.matches] == [m.kind for m in legacy.matches]
    assert pipelined.offloaded == legacy.offloaded
    assert [
        [m.call_name for m in mapping.mappings] for mapping in pipelined.mappings
    ] == [[m.call_name for m in mapping.mappings] for mapping in legacy.mappings]


# ----------------------------------------------------------------------
# Pipeline-equivalence differential tests
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", kernel_names())
def test_default_pipeline_matches_legacy_on_polybench(name):
    kernel = get_kernel(name)
    options = CompileOptions(**UNCACHED)
    pipelined, legacy = _compile_both(
        kernel.source, options, size_hint=kernel.params("SMALL")
    )
    _assert_identical(pipelined, legacy)


@pytest.mark.parametrize("name", kernel_names())
def test_default_pipeline_matches_legacy_without_size_hint(name):
    pipelined, legacy = _compile_both(
        get_kernel(name).source, CompileOptions(**UNCACHED)
    )
    _assert_identical(pipelined, legacy)


@pytest.mark.parametrize(
    "options",
    [
        CompileOptions(enable_offload=False, **UNCACHED),
        CompileOptions(enable_fusion=False, **UNCACHED),
        CompileOptions(enable_tiling=True, crossbar_rows=16, crossbar_cols=16, **UNCACHED),
        CompileOptions(min_macs_per_write=32.0, **UNCACHED),
        CompileOptions(offload_kinds=("gemm",), **UNCACHED),
        CompileOptions(offload_policy="always", **UNCACHED),
        CompileOptions(offload_policy="never", **UNCACHED),
        CompileOptions(fusion_requires_shared_input=True, **UNCACHED),
    ],
    ids=[
        "no-offload",
        "no-fusion-flag",
        "tiling",
        "selective",
        "gemm-only",
        "always-policy",
        "never-policy",
        "shared-input-fusion",
    ],
)
@pytest.mark.parametrize("name", ["2mm", "gemm", "mvt", "conv"])
def test_option_space_matches_legacy(name, options):
    kernel = get_kernel(name)
    pipelined, legacy = _compile_both(
        kernel.source, options, size_hint=kernel.params("SMALL")
    )
    _assert_identical(pipelined, legacy)


def test_fusion_source_matches_legacy():
    pipelined, legacy = _compile_both(
        SHARED_INPUT_GEMMS_SOURCE, CompileOptions(**UNCACHED), size_hint={"N": 32}
    )
    _assert_identical(pipelined, legacy)
    assert pipelined.report.fusion_groups  # the differential is non-trivial


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
def test_pass_timings_populated_for_every_pass():
    kernel = get_kernel("gemm")
    result = compile_source(kernel.source, options=CompileOptions(**UNCACHED))
    names = [timing.name for timing in result.report.pass_timings]
    assert names == list(resolve_pass_names("default"))
    assert all(t.wall_time_s >= 0.0 for t in result.report.pass_timings)
    # The parse pass materialises the program; lowering reassembles it.
    assert result.report.pass_timings[0].ir_size_before == 0
    assert result.report.pass_timings[0].ir_size_after > 0
    assert result.report.pass_timings[-1].name == "engine-lower"
    assert result.report.timing_summary()


def test_dump_ir_after_records_snapshots():
    kernel = get_kernel("gemm")
    options = CompileOptions(dump_ir_after=("parse", "lower"), **UNCACHED)
    result = compile_source(kernel.source, options=options)
    assert set(result.report.ir_dumps) == {"parse", "lower"}
    assert result.report.ir_dumps["lower"] == to_source(result.program)
    assert "polly_cim" in result.report.ir_dumps["lower"]
    assert "polly_cim" not in result.report.ir_dumps["parse"]


# ----------------------------------------------------------------------
# Pipeline composition and ordering
# ----------------------------------------------------------------------
def test_tiling_before_isolate_raises_pipeline_error():
    with pytest.raises(PipelineError, match="isolated-kernels"):
        PassManager(
            [
                ParsePass(),
                NormalizeReductionsPass(),
                DetectScopsPass(),
                BuildScheduleTreesPass(),
                MatchKernelsPass(),
                SelectOffloadPass(),
                TilingPass(),
                IsolatePass(),
            ]
        )


def test_pipeline_error_names_the_offending_pass():
    with pytest.raises(PipelineError, match="'tiling'"):
        build_pipeline(["parse", "tiling"])


def test_unknown_pipeline_and_pass_names_raise():
    with pytest.raises(PipelineError, match="unknown pipeline"):
        CompileOptions(pipeline="bogus")
    with pytest.raises(PipelineError, match="unknown pass"):
        CompileOptions(pipeline=["parse", "frobnicate"])
    with pytest.raises(ValueError, match="unknown offload policy"):
        CompileOptions(offload_policy="sometimes")


def test_empty_pipeline_rejected():
    with pytest.raises(PipelineError):
        PassManager([])


def test_fusion_or_tiling_after_device_map_rejected():
    # Too-late ordering: once device-map rewrote the kernels into runtime
    # calls, fusion/tiling would only decorate the report with
    # transformations the generated program does not contain.
    front = list(resolve_pass_names("default"))
    front.remove("fusion")
    front.insert(front.index("lower"), "fusion")  # ... device-map, fusion, lower
    with pytest.raises(PipelineError, match="must run before"):
        build_pipeline(front)
    front = list(resolve_pass_names("default"))
    front.remove("tiling")
    front.insert(front.index("lower"), "tiling")
    with pytest.raises(PipelineError, match="must run before"):
        build_pipeline(front)


def test_unknown_dump_ir_after_name_rejected():
    with pytest.raises(ValueError, match="dump_ir_after"):
        CompileOptions(dump_ir_after=("lowering",))  # typo for "lower"


def test_named_pipelines_resolve():
    assert set(NAMED_PIPELINES) >= {"default", "no-fusion", "detect-only"}
    for name in NAMED_PIPELINES:
        manager = build_pipeline(name)
        assert manager.pass_names == list(resolve_pass_names(name))
        assert manager.description == name


def test_no_fusion_pipeline_disables_fusion_only():
    options = CompileOptions(pipeline="no-fusion", **UNCACHED)
    result = compile_source(SHARED_INPUT_GEMMS_SOURCE, options=options)
    assert not result.report.fusion_groups
    assert result.report.offloaded_kernels == 2
    assert result.report.runtime_calls_emitted.count("polly_cimBlasSGemm") == 2
    default = compile_source(
        SHARED_INPUT_GEMMS_SOURCE, options=CompileOptions(**UNCACHED)
    )
    assert default.report.fusion_groups
    assert default.report.runtime_calls_emitted == ["polly_cimBlasGemmBatched"]


def test_detect_only_pipeline_transforms_nothing():
    options = CompileOptions(pipeline="detect-only", **UNCACHED)
    result = compile_source(get_kernel("gemm").source, options=options)
    assert result.program is result.source_program
    assert result.report.scop_count == 1
    assert result.matches and all(m.kind for m in result.matches)
    assert not result.report.decisions
    assert not result.mappings
    assert [t.name for t in result.report.pass_timings] == list(
        resolve_pass_names("detect-only")
    )


def test_explicit_pass_list_pipeline():
    options = CompileOptions(
        pipeline=["parse", "normalize-reductions", "detect-scops"], **UNCACHED
    )
    result = compile_source(get_kernel("gemm").source, options=options)
    assert result.report.scop_count == 1
    assert not result.matches


def test_pipeline_is_part_of_cache_fingerprint():
    from repro.compiler.cache import compile_fingerprint

    source = get_kernel("gemm").source
    default_key = compile_fingerprint(source, CompileOptions(), None)
    detect_key = compile_fingerprint(
        source, CompileOptions(pipeline="detect-only"), None
    )
    assert default_key != detect_key


# ----------------------------------------------------------------------
# Offload policies
# ----------------------------------------------------------------------
def test_always_offload_policy_ignores_threshold_and_kinds():
    kernel = get_kernel("mvt")  # gemv-like: rejected by both filters below
    options = CompileOptions(
        offload_policy="always",
        offload_kinds=("gemm",),
        min_macs_per_write=1e9,
        **UNCACHED,
    )
    result = compile_source(
        kernel.source, options=options, size_hint=kernel.params("SMALL")
    )
    assert result.report.offloaded_kernels == result.report.detected_kernels > 0
    assert all("always-offload" in d.reason for d in result.report.decisions)


def test_never_offload_policy_keeps_everything_on_host():
    kernel = get_kernel("gemm")
    options = CompileOptions(offload_policy="never", **UNCACHED)
    result = compile_source(
        kernel.source, options=options, size_hint=kernel.params("SMALL")
    )
    assert result.report.offloaded_kernels == 0
    assert result.report.detected_kernels > 0
    assert not result.offloaded
    # Intensity is still estimated for the report.
    assert any(
        d.estimated_macs_per_write is not None for d in result.report.decisions
    )


def test_policy_instance_override_disables_cache():
    compiler = TdoCimCompiler(CompileOptions(), policy=AlwaysOffload())
    assert compiler.cache is None
    result = compiler.compile(get_kernel("gemm").source)
    assert result.report.offloaded_kernels == result.report.detected_kernels


def test_policy_registry_round_trip():
    from repro.compiler.passes import POLICY_REGISTRY, resolve_policy

    for name, cls in POLICY_REGISTRY.items():
        assert isinstance(resolve_policy(name), cls)
    assert isinstance(resolve_policy("threshold"), ThresholdPolicy)
    assert NeverOffload.name in POLICY_REGISTRY


# ----------------------------------------------------------------------
# Intensity estimation (satellite fixes)
# ----------------------------------------------------------------------
def test_missing_extent_recorded_in_decision_reason():
    kernel = get_kernel("gemm")
    options = CompileOptions(**UNCACHED)
    # Size hint present but missing the loop-extent parameters: the kernel
    # is still offloaded (the heuristic cannot reject it), and the reason
    # records why no intensity estimate exists.
    result = compile_source(
        kernel.source, options=options, size_hint={"alpha": 1.5}
    )
    offloaded = [d for d in result.report.decisions if d.offloaded]
    assert offloaded
    assert all(d.estimated_macs_per_write is None for d in offloaded)
    assert any("size hint missing extent" in d.reason for d in offloaded)


def test_complete_size_hint_reason_is_clean():
    kernel = get_kernel("gemm")
    result = compile_source(
        kernel.source,
        options=CompileOptions(**UNCACHED),
        size_hint=kernel.params("SMALL"),
    )
    offloaded = [d for d in result.report.decisions if d.offloaded]
    assert offloaded
    assert all(d.reason == "pattern matched by Loop Tactics" for d in offloaded)
    assert all(d.estimated_macs_per_write is not None for d in offloaded)


def test_estimated_intensity_none_without_hint():
    program = parse_program(get_kernel("gemm").source)
    options = CompileOptions(pipeline="detect-only", **UNCACHED)
    result = compile_source(program, options=options)
    match = result.matches[0]
    assert estimated_intensity(match, None) == (None, None)
    intensity, note = estimated_intensity(match, {"NI": 8, "NJ": 8, "NK": 8})
    assert intensity is not None and note is None
    intensity, note = estimated_intensity(match, {"NI": 8})
    assert intensity is None and "size hint missing extent" in note


# ----------------------------------------------------------------------
# Options snapshot (satellite regression test)
# ----------------------------------------------------------------------
def test_cached_options_snapshot_is_deep():
    from repro.compiler.cache import KernelCompileCache

    dump_list = ["parse"]
    options = CompileOptions(dump_ir_after=dump_list)
    compiler = TdoCimCompiler(options, cache=KernelCompileCache())
    result = compiler.compile(get_kernel("gemm").source)
    # Mutating the caller's list after compile must not leak into the
    # cached artifact's options snapshot.
    dump_list.append("lower")
    assert list(result.options.dump_ir_after) == ["parse"]
    assert result.options is not options


def test_uncached_result_keeps_live_options():
    options = CompileOptions(**UNCACHED)
    compiler = TdoCimCompiler(options)
    result = compiler.compile(get_kernel("gemm").source)
    assert result.options is options

"""Tests for the IR builder and the C-like pretty printer."""

import pytest

from repro.ir import IRBuilder, to_source
from repro.ir.stmt import Loop


def build_gemm():
    b = IRBuilder("gemm")
    m, n, k = b.size_params("M", "N", "K")
    alpha, beta = b.float_params("alpha", "beta")
    a = b.array("A", (m, k))
    bb = b.array("B", (k, n))
    c = b.array("C", (m, n))
    with b.loop("i", 0, m) as i:
        with b.loop("j", 0, n) as j:
            b.assign(c[i, j], beta * c[i, j])
            with b.loop("k", 0, k) as kk:
                b.add_assign(c[i, j], alpha * a[i, kk] * bb[kk, j])
    return b.finish()


def test_builder_produces_expected_structure():
    program = build_gemm()
    assert program.param_names == ["M", "N", "K", "alpha", "beta"]
    assert program.array_names == ["A", "B", "C"]
    loops = program.top_level_loops()
    assert len(loops) == 1 and loops[0].var == "i"
    assert len(program.statements()) == 2


def test_builder_rejects_wrong_rank_indexing():
    b = IRBuilder("p")
    n = b.size_param("N")
    a = b.array("A", (n, n))
    with pytest.raises(IndexError):
        _ = a[1]


def test_builder_finish_twice_fails():
    b = IRBuilder("p")
    b.finish()
    with pytest.raises(RuntimeError):
        b.finish()


def test_builder_unclosed_loop_is_detected():
    b = IRBuilder("p")
    n = b.size_param("N")
    ctx = b.loop("i", 0, n)
    ctx.__enter__()
    with pytest.raises(RuntimeError):
        b.finish()


def test_printer_emits_compilable_looking_c(gemm_program):
    text = to_source(gemm_program)
    assert text.startswith("void gemm(")
    assert "for (int i = 0; i < M; ++i)" in text
    assert "C[i][j] += " in text or "C[i][j] = " in text
    assert text.count("{") == text.count("}")


def test_printer_roundtrip_through_frontend():
    """Printing a built program and re-parsing it yields the same structure."""
    from repro.frontend import parse_program

    program = build_gemm()
    reparsed = parse_program(to_source(program))
    assert reparsed.param_names == program.param_names
    assert reparsed.array_names == program.array_names
    assert len(reparsed.statements()) == len(program.statements())


def test_printer_handles_nonunit_step():
    b = IRBuilder("p")
    n = b.size_param("N")
    a = b.array("A", (n,))
    with b.loop("i", 0, n, step=4) as i:
        b.assign(a[i], 0)
    text = to_source(b.finish())
    assert "i += 4" in text


def test_call_statements_printed(gemm_program):
    b = IRBuilder("p")
    b.call("polly_cimInit", 0)
    text = to_source(b.finish())
    assert "polly_cimInit(0);" in text

#!/usr/bin/env python3
"""Documentation checker run by the CI docs job.

Two checks, no dependencies beyond the standard library:

1. **Link resolution** — every intra-repo markdown link in ``docs/*.md``
   and ``README.md`` (relative targets; external ``http(s)``/``mailto``
   links and pure ``#anchor`` links are skipped) must point at an existing
   file or directory.
2. **Architecture coverage** — every package under ``src/repro/`` (a
   directory with an ``__init__.py``) must be mentioned in
   ``docs/architecture.md``, so the walkthrough cannot silently go stale
   when a new package lands.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — deliberately simple; code spans with parentheses
#: are not a link pattern this repo's docs use.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_doc_files() -> list[Path]:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_links(files: list[Path]) -> list[str]:
    problems = []
    for doc in files:
        for line_no, line in enumerate(doc.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:  # pure anchor into the same file
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(REPO_ROOT)}:{line_no}: "
                        f"broken link -> {target}"
                    )
    return problems


def check_architecture_coverage() -> list[str]:
    architecture = REPO_ROOT / "docs" / "architecture.md"
    if not architecture.exists():
        return ["docs/architecture.md is missing"]
    text = architecture.read_text()
    problems = []
    src_root = REPO_ROOT / "src" / "repro"
    for init in sorted(src_root.rglob("__init__.py")):
        package = init.parent.relative_to(REPO_ROOT / "src").as_posix()
        if f"src/{package}" not in text and f"`{package}`" not in text:
            problems.append(
                f"docs/architecture.md: package {package} is not mentioned"
            )
    return problems


def main() -> int:
    files = iter_doc_files()
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    problems = check_links(files) + check_architecture_coverage()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    packages = len(list((REPO_ROOT / "src" / "repro").rglob("__init__.py")))
    print(
        f"docs OK: {len(files)} files checked, all links resolve, "
        f"{packages} packages covered in architecture.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

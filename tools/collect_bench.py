#!/usr/bin/env python3
"""Aggregate every ``BENCH_*.json`` into one benchmark-trajectory table.

Each PR's benchmark harness drops a ``BENCH_*.json`` in the repository
root; this tool folds them into a single chronological table (one row per
benchmark file, with its headline numbers) so the performance history of
the project can be read in one place.  Output goes to stdout and —
unless ``--no-write`` — to ``benchmarks/results/trajectory.md``.

The trajectory is also a regression gate: ``--check`` compares each
file's scale-free gate metrics (speedup factors, throughput fractions —
never wall-clock seconds, which vary by machine) against the recorded
``benchmarks/results/baselines.json`` and fails if any metric regressed
by more than ``--tolerance`` (default 10%).  When an *intentional*
change moves a number, regenerate the benchmark and re-record with
``--update-baselines``.

Standard library only, so the CI docs/tooling jobs can run it without
installing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _headline_engine_speed(data: dict) -> str:
    rows = data.get("results", [])
    best = max(
        (row for row in rows if row.get("speedup")),
        key=lambda row: row["speedup"],
        default=None,
    )
    if best is None:
        return "no results"
    return (
        f"vectorized engine {best['speedup']:.0f}x exact over the "
        f"interpreter at {best.get('kernel', '?')}@{best.get('size', '?')}"
    )


def _headline_engine_lowering(data: dict) -> str:
    coverage = data.get("coverage", {})
    fraction = coverage.get("fold_or_better_fraction")
    if fraction is None:
        return "no results"
    return (
        f"{fraction:.0%} of {coverage.get('nest_count', '?')} PolyBench "
        f"nests slice-fold exactly "
        f"({coverage.get('native_eligible_fraction', 0):.0%} native-eligible)"
    )


def _headline_multitile(data: dict) -> str:
    scaling = data.get("tile_scaling", [])
    cache = data.get("compile_cache", [])
    parts = []
    if scaling:
        speedups = [row["speedup_at_4_tiles"] for row in scaling]
        parts.append(
            f"{min(speedups):.1f}-{max(speedups):.1f}x latency at 4 tiles "
            f"over {len(scaling)} kernels"
        )
    if cache:
        speedups = [row["speedup"] for row in cache]
        parts.append(f"warm-compile {min(speedups):.0f}-{max(speedups):.0f}x")
    return "; ".join(parts) or "no results"


def _headline_pipelines(data: dict) -> str:
    rows = data.get("rows", [])
    pipelines = data.get("pipelines", [])
    return (
        f"{len(pipelines)} pipelines x {len(rows)} kernels "
        f"on {data.get('dataset', '?')}"
    )


def _headline_serving(data: dict) -> str:
    return (
        f"dynamic batching {data.get('speedup_at_4_tiles', '?')}x over "
        f"serialized execution at 4 tiles "
        f"({data.get('requests', '?')} reqs, {len(data.get('tenants', []))} tenants)"
    )


def _headline_fleet(data: dict) -> str:
    extension = data.get("lifetime_extension_factor")
    fraction = data.get("storm_throughput_fraction")
    storm = data.get("failover_study", {}).get("storm", {})
    parts = []
    if extension is not None:
        parts.append(
            f"wear-aware placement {extension:.0f}x fleet lifetime "
            f"over round-robin"
        )
    if fraction is not None:
        parts.append(
            f"{fraction:.2f}x throughput with half the fleet killed "
            f"({storm.get('completed', '?')}/{data.get('requests', '?')} "
            f"served, bit-identical)"
        )
    return "; ".join(parts) or "no results"


def _headline_gateway(data: dict) -> str:
    p99 = data.get("latency_p99_s")
    if p99 is None:
        return "no results"
    identical = data.get("differential_identical")
    verdict = (
        "bit-identical"
        if identical
        else ("DIFFERS" if identical is not None else "not run")
    )
    return (
        f"wall-clock pool p99 {p99 * 1e3:.1f} ms over "
        f"{data.get('requests', '?')} reqs at "
        f"{data.get('throughput_rps', 0):.0f} rps "
        f"({data.get('num_workers', '?')} workers); "
        f"differential vs VirtualClock: {verdict}"
    )


def _headline_gateway_chaos(data: dict) -> str:
    faults = data.get("faults_planned")
    if faults is None:
        return "no results"
    ok = (
        data.get("storm_invariants_ok") == 1.0
        and data.get("control_invariants_ok") == 1.0
    )
    return (
        f"seeded chaos storm: {faults} faults over "
        f"{data.get('requests', '?')} reqs, "
        f"{data.get('respawns', 0)} respawns; invariants "
        f"{'all green' if ok else 'VIOLATED'} "
        "(zero lost, exact partition, exactly-once, bit-identical)"
    )


#: benchmark-name -> headline extractor; unknown names fall back to keys.
HEADLINERS = {
    "engine_speed": _headline_engine_speed,
    "engine_lowering": _headline_engine_lowering,
    "multitile_scaling": _headline_multitile,
    "pipeline_ablation": _headline_pipelines,
    "serving_throughput": _headline_serving,
    "fleet_failover": _headline_fleet,
    "gateway_wallclock": _headline_gateway,
    "gateway_chaos": _headline_gateway_chaos,
}


# ----------------------------------------------------------------------
# Gate metrics (the --check regression gate)
# ----------------------------------------------------------------------
def _gate_engine_speed(data: dict) -> dict:
    speedups = [row["speedup"] for row in data.get("results", []) if row.get("speedup")]
    return {"max_speedup": max(speedups)} if speedups else {}


def _gate_multitile(data: dict) -> dict:
    metrics = {}
    scaling = [row["speedup_at_4_tiles"] for row in data.get("tile_scaling", [])]
    if scaling:
        metrics["min_speedup_at_4_tiles"] = min(scaling)
    cache = [row["speedup"] for row in data.get("compile_cache", [])]
    if cache:
        metrics["min_warm_compile_speedup"] = min(cache)
    return metrics


def _gate_engine_lowering(data: dict) -> dict:
    # Tier classification is static analysis — identical in smoke and
    # full runs and across machines, so the gate is perfectly stable.
    fraction = data.get("coverage", {}).get("fold_or_better_fraction")
    return {"fold_or_better_fraction": fraction} if fraction is not None else {}


def _gate_serving(data: dict) -> dict:
    value = data.get("speedup_at_4_tiles")
    return {"speedup_at_4_tiles": value} if value is not None else {}


def _gate_fleet(data: dict) -> dict:
    metrics = {}
    if data.get("lifetime_extension_factor") is not None:
        metrics["lifetime_extension_factor"] = data["lifetime_extension_factor"]
    if data.get("storm_throughput_fraction") is not None:
        metrics["storm_throughput_fraction"] = data["storm_throughput_fraction"]
    return metrics


def _gate_gateway(data: dict) -> dict:
    # Latency/throughput are machine-dependent wall-clock numbers, so
    # the gate keeps only the scale-free correctness metrics: the
    # differential verdict and the answered fraction, both exactly 1.0.
    metrics = {}
    if data.get("differential_identical") is not None:
        metrics["differential_identical"] = float(data["differential_identical"])
    if data.get("served_fraction") is not None:
        metrics["served_fraction"] = data["served_fraction"]
    return metrics


def _gate_gateway_chaos(data: dict) -> dict:
    # All scale-free, all exactly 1.0 by construction: invariant suites
    # and answered fractions, never wall-clock durations.
    metrics = {}
    for name in (
        "storm_invariants_ok",
        "control_invariants_ok",
        "storm_answered_fraction",
        "control_completed_fraction",
        "control_resilience_quiet",
    ):
        if data.get(name) is not None:
            metrics[name] = float(data[name])
    return metrics


#: benchmark-name -> scale-free gate metrics (higher is better for all).
#: pipeline_ablation is deliberately absent: its only numbers are
#: machine-dependent pass wall-times, which would make the gate flaky.
GATE_METRICS = {
    "engine_speed": _gate_engine_speed,
    "engine_lowering": _gate_engine_lowering,
    "multitile_scaling": _gate_multitile,
    "serving_throughput": _gate_serving,
    "fleet_failover": _gate_fleet,
    "gateway_wallclock": _gate_gateway,
    "gateway_chaos": _gate_gateway_chaos,
}

BASELINES_PATH = Path("benchmarks") / "results" / "baselines.json"


def gate_metrics(root: Path) -> dict[str, dict[str, float]]:
    """Current gate metrics per BENCH_*.json file name."""
    metrics: dict[str, dict[str, float]] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        extractor = GATE_METRICS.get(data.get("benchmark"))
        if extractor is None:
            continue
        extracted = extractor(data)
        if extracted:
            metrics[path.name] = extracted
    return metrics


def check_baselines(root: Path, tolerance: float) -> list[str]:
    """Regressions beyond *tolerance*, as human-readable failure lines."""
    baselines_file = root / BASELINES_PATH
    if not baselines_file.exists():
        return [
            f"no recorded baselines at {BASELINES_PATH}; run "
            "`python tools/collect_bench.py --update-baselines` and commit it"
        ]
    try:
        baselines = json.loads(baselines_file.read_text())
    except json.JSONDecodeError as exc:
        return [f"{BASELINES_PATH} is corrupt: {exc}"]
    current = gate_metrics(root)
    failures = []
    for file_name, recorded in sorted(baselines.items()):
        measured = current.get(file_name)
        if measured is None:
            failures.append(
                f"{file_name}: baseline recorded but the file is missing "
                "or carries no gate metrics"
            )
            continue
        for metric, recorded_value in sorted(recorded.items()):
            if metric not in measured:
                failures.append(f"{file_name}: metric {metric!r} disappeared")
                continue
            floor = recorded_value * (1.0 - tolerance)
            if measured[metric] < floor:
                failures.append(
                    f"{file_name}: {metric} regressed to "
                    f"{measured[metric]:.4g} (baseline {recorded_value:.4g}, "
                    f"tolerance {tolerance:.0%} -> floor {floor:.4g})"
                )
    return failures


def collect(root: Path) -> list[dict]:
    rows = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append(
                {
                    "file": path.name,
                    "benchmark": "(unreadable)",
                    "mode": "-",
                    "headline": f"error: {exc}",
                }
            )
            continue
        name = data.get("benchmark", "(unnamed)")
        extractor = HEADLINERS.get(name)
        if extractor is not None:
            headline = extractor(data)
        else:
            headline = ", ".join(sorted(data.keys()))
        rows.append(
            {
                "file": path.name,
                "benchmark": name,
                "mode": data.get("mode", "-") or "-",
                "headline": headline,
            }
        )
    return rows


def render_markdown(rows: list[dict]) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "Aggregated from the `BENCH_*.json` files in the repository root",
        "by `tools/collect_bench.py`; regenerate after adding a benchmark.",
        "",
        "| file | benchmark | mode | headline |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['file']} | {row['benchmark']} | {row['mode']} "
            f"| {row['headline']} |"
        )
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=str(REPO_ROOT), help="repository root to scan"
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print only; do not update benchmarks/results/trajectory.md",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if any gate metric regressed beyond --tolerance "
        "vs benchmarks/results/baselines.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression per gate metric (default 0.10)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="re-record benchmarks/results/baselines.json from the current "
        "BENCH_*.json files (commit the result)",
    )
    args = parser.parse_args()
    root = Path(args.root)
    rows = collect(root)
    if not rows:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    table = render_markdown(rows)
    print(table)
    if not args.no_write:
        out = root / "benchmarks" / "results" / "trajectory.md"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(table)
        print(f"wrote {out.relative_to(root)}", file=sys.stderr)
    if args.update_baselines:
        baselines_file = root / BASELINES_PATH
        baselines_file.parent.mkdir(parents=True, exist_ok=True)
        baselines_file.write_text(
            json.dumps(gate_metrics(root), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINES_PATH}", file=sys.stderr)
    if args.check:
        failures = check_baselines(root, args.tolerance)
        if failures:
            print("\nbenchmark regression gate FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"\nbenchmark regression gate passed "
            f"(tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Aggregate every ``BENCH_*.json`` into one benchmark-trajectory table.

Each PR's benchmark harness drops a ``BENCH_*.json`` in the repository
root; this tool folds them into a single chronological table (one row per
benchmark file, with its headline numbers) so the performance history of
the project can be read in one place.  Output goes to stdout and —
unless ``--no-write`` — to ``benchmarks/results/trajectory.md``.

Standard library only, so the CI docs/tooling jobs can run it without
installing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _headline_engine_speed(data: dict) -> str:
    rows = data.get("results", [])
    best = max(
        (row for row in rows if row.get("speedup")),
        key=lambda row: row["speedup"],
        default=None,
    )
    if best is None:
        return "no results"
    return (
        f"vectorized engine {best['speedup']:.0f}x exact over the "
        f"interpreter at {best.get('kernel', '?')}@{best.get('size', '?')}"
    )


def _headline_multitile(data: dict) -> str:
    scaling = data.get("tile_scaling", [])
    cache = data.get("compile_cache", [])
    parts = []
    if scaling:
        speedups = [row["speedup_at_4_tiles"] for row in scaling]
        parts.append(
            f"{min(speedups):.1f}-{max(speedups):.1f}x latency at 4 tiles "
            f"over {len(scaling)} kernels"
        )
    if cache:
        speedups = [row["speedup"] for row in cache]
        parts.append(f"warm-compile {min(speedups):.0f}-{max(speedups):.0f}x")
    return "; ".join(parts) or "no results"


def _headline_pipelines(data: dict) -> str:
    rows = data.get("rows", [])
    pipelines = data.get("pipelines", [])
    return (
        f"{len(pipelines)} pipelines x {len(rows)} kernels "
        f"on {data.get('dataset', '?')}"
    )


def _headline_serving(data: dict) -> str:
    return (
        f"dynamic batching {data.get('speedup_at_4_tiles', '?')}x over "
        f"serialized execution at 4 tiles "
        f"({data.get('requests', '?')} reqs, {len(data.get('tenants', []))} tenants)"
    )


def _headline_fleet(data: dict) -> str:
    extension = data.get("lifetime_extension_factor")
    fraction = data.get("storm_throughput_fraction")
    storm = data.get("failover_study", {}).get("storm", {})
    parts = []
    if extension is not None:
        parts.append(
            f"wear-aware placement {extension:.0f}x fleet lifetime "
            f"over round-robin"
        )
    if fraction is not None:
        parts.append(
            f"{fraction:.2f}x throughput with half the fleet killed "
            f"({storm.get('completed', '?')}/{data.get('requests', '?')} "
            f"served, bit-identical)"
        )
    return "; ".join(parts) or "no results"


#: benchmark-name -> headline extractor; unknown names fall back to keys.
HEADLINERS = {
    "engine_speed": _headline_engine_speed,
    "multitile_scaling": _headline_multitile,
    "pipeline_ablation": _headline_pipelines,
    "serving_throughput": _headline_serving,
    "fleet_failover": _headline_fleet,
}


def collect(root: Path) -> list[dict]:
    rows = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append(
                {
                    "file": path.name,
                    "benchmark": "(unreadable)",
                    "mode": "-",
                    "headline": f"error: {exc}",
                }
            )
            continue
        name = data.get("benchmark", "(unnamed)")
        extractor = HEADLINERS.get(name)
        if extractor is not None:
            headline = extractor(data)
        else:
            headline = ", ".join(sorted(data.keys()))
        rows.append(
            {
                "file": path.name,
                "benchmark": name,
                "mode": data.get("mode", "-") or "-",
                "headline": headline,
            }
        )
    return rows


def render_markdown(rows: list[dict]) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "Aggregated from the `BENCH_*.json` files in the repository root",
        "by `tools/collect_bench.py`; regenerate after adding a benchmark.",
        "",
        "| file | benchmark | mode | headline |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['file']} | {row['benchmark']} | {row['mode']} "
            f"| {row['headline']} |"
        )
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=str(REPO_ROOT), help="repository root to scan"
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print only; do not update benchmarks/results/trajectory.md",
    )
    args = parser.parse_args()
    root = Path(args.root)
    rows = collect(root)
    if not rows:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    table = render_markdown(rows)
    print(table)
    if not args.no_write:
        out = root / "benchmarks" / "results" / "trajectory.md"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(table)
        print(f"wrote {out.relative_to(root)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Print the resolved pass pipeline and per-pass timings for a source file.

Resolves a pipeline description (a named pipeline or an explicit
comma-separated pass list) against the pass registry, compiles the given
mini-C file (or a built-in PolyBench kernel via ``--kernel``), and prints
the pass list, the per-pass wall-time / IR-delta table recorded by the
pass manager, and the compiler's decision summary.

Usage::

    PYTHONPATH=src python tools/dump_pipeline.py path/to/kernel.c
    PYTHONPATH=src python tools/dump_pipeline.py --kernel gemm --pipeline no-fusion
    PYTHONPATH=src python tools/dump_pipeline.py --kernel 2mm \\
        --pipeline parse,normalize-reductions,detect-scops \\
        --size-hint NI=64 --size-hint NJ=64
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running without PYTHONPATH=src.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import CompileOptions, PipelineError, TdoCimCompiler  # noqa: E402
from repro.compiler.passes import (  # noqa: E402
    NAMED_PIPELINES,
    PASS_REGISTRY,
    resolve_pass_names,
)


def parse_size_hints(pairs: list[str]) -> dict[str, float] | None:
    if not pairs:
        return None
    hints: dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not _:
            raise SystemExit(f"--size-hint expects NAME=VALUE, got {pair!r}")
        hints[name] = float(value)
    return hints


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("source", nargs="?", help="mini-C source file")
    parser.add_argument(
        "--kernel", help="built-in PolyBench kernel name instead of a file"
    )
    parser.add_argument(
        "--pipeline",
        default="default",
        help="named pipeline or comma-separated pass list "
        f"(named: {', '.join(sorted(NAMED_PIPELINES))})",
    )
    parser.add_argument(
        "--policy",
        default="threshold",
        help="offload policy: threshold (default), always, never",
    )
    parser.add_argument(
        "--size-hint",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="problem-size parameter for the intensity heuristic (repeatable)",
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="list registered passes and exit"
    )
    args = parser.parse_args()

    if args.list_passes:
        print("registered passes:")
        for name, cls in sorted(PASS_REGISTRY.items()):
            print(f"  {name:<22s} requires={list(cls.requires)} "
                  f"provides={list(cls.provides)}")
        print("\nnamed pipelines:")
        for name, passes in NAMED_PIPELINES.items():
            print(f"  {name:<12s} = {' -> '.join(passes)}")
        return 0

    pipeline: str | list[str] = args.pipeline
    if "," in pipeline:
        pipeline = [name.strip() for name in pipeline.split(",") if name.strip()]

    if args.kernel:
        from repro.workloads import get_kernel

        source = get_kernel(args.kernel).source
        label = f"polybench:{args.kernel}"
    elif args.source:
        source = Path(args.source).read_text()
        label = args.source
    else:
        parser.error("give a source file or --kernel NAME")

    try:
        names = resolve_pass_names(pipeline)
        options = CompileOptions(
            pipeline=pipeline,
            offload_policy=args.policy,
            enable_compile_cache=False,
        )
    except (PipelineError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"pipeline {args.pipeline!r} for {label}:")
    print("  " + " -> ".join(names))
    print()

    try:
        result = TdoCimCompiler(options).compile(
            source, size_hint=parse_size_hints(args.size_hint)
        )
    except PipelineError as exc:  # bad ordering is caught at pipeline build
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.report.timing_summary())
    print()
    print(result.report.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())

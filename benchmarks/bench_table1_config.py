"""Table I: CIM and host system configuration.

Regenerates the configuration/energy-model table the whole evaluation is
parameterised by and checks the values against the paper's numbers.
"""

import pytest

from repro.eval.tables import format_table1, table1_rows
from repro.hw.energy import TABLE_I

from conftest import write_result


def test_table1_regeneration(benchmark):
    text = benchmark(format_table1)
    write_result("table1_config", text)
    # Spot-check the headline Table I entries.
    assert "IBM PCM 2x(256x256 @4-bit)" in text
    assert "200 fJ" in text and "200 pJ" in text
    assert "2x Arm-A7 @ 1.2 GHz" in text
    assert "128 pJ" in text


def test_table1_model_constants(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) >= 10
    cim, host = TABLE_I.cim, TABLE_I.host
    assert cim.compute_latency_per_gemv_s == pytest.approx(1e-6)
    assert cim.write_latency_per_row_s == pytest.approx(2.5e-6)
    assert cim.mixed_signal_energy_per_gemv_j == pytest.approx(3.9e-9)
    assert cim.buffer_energy_per_byte_j == pytest.approx(5.4e-12)
    assert cim.digital_weighted_sum_per_gemv_j == pytest.approx(40e-12)
    assert cim.digital_alu_op_j == pytest.approx(2.11e-12)
    assert cim.dma_microengine_energy_per_gemv_j == pytest.approx(0.78e-9)
    assert host.l1_bytes == 32 * 1024 and host.l2_bytes == 2 * 1024 * 1024

"""Figure 6 (left): energy per kernel, host vs host+CIM, and MACs/CIM-write.

Regenerates the left panel of the paper's Figure 6 for the seven evaluated
PolyBench kernels.  Asserted shape (absolute numbers are simulator-specific,
see EXPERIMENTS.md):

* GEMM-like kernels (2mm, 3mm, gemm, conv) gain large energy improvements;
* GEMV-like kernels (gesummv, bicg, mvt) are at best marginal — their
  compute intensity (MACs per CIM write) is 1, so writes plus host-side
  offload overhead dominate;
* the selective geometric mean (GEMM-like only) is far above the overall
  geometric mean, mirroring the paper's 32.6x "Selective Geomean" bar.
"""

import pytest

from repro.eval import figure6, format_figure6

from conftest import write_result

DATASET = "MEDIUM"


@pytest.fixture(scope="module")
def figure6_data():
    return figure6(dataset=DATASET)


def test_figure6_energy_panel(benchmark, figure6_data):
    data = benchmark.pedantic(
        figure6, kwargs={"dataset": "SMALL"}, rounds=1, iterations=1
    )
    write_result("fig6_energy_small", format_figure6(data))
    write_result("fig6_energy_medium", format_figure6(figure6_data))

    for row in figure6_data.rows:
        if row.category == "gemm-like":
            assert row.energy_improvement > 5.0, row.kernel
        else:
            assert row.energy_improvement < 3.0, row.kernel
    assert figure6_data.selective_energy_geomean > 10.0
    assert figure6_data.selective_energy_geomean > 2 * figure6_data.energy_geomean


def test_figure6_macs_per_write(figure6_data):
    """The compute-intensity series plotted on the right axis of the left panel."""
    intensity = {row.kernel: row.macs_per_cim_write for row in figure6_data.rows}
    # GEMV-like kernels use every written matrix element exactly once.
    for kernel in ("gesummv", "bicg", "mvt"):
        assert intensity[kernel] == pytest.approx(1.0)
    # GEMM-like kernels reuse every written element many times.
    for kernel in ("2mm", "3mm", "gemm", "conv"):
        assert intensity[kernel] > 50.0
    assert intensity["gemm"] == pytest.approx(128.0)  # reuse factor = N

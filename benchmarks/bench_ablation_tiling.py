"""Ablation: revisited tiling + tile-loop interchange (Listing 3).

For a GEMM whose operands exceed the crossbar, the operand tile written to
the crossbar should be reused across as many point-loop executions as
possible.  The paper's tile-loop order (i_t, k_t, j_t) writes each A-tile
once; the naive order (i_t, j_t, k_t) rewrites the A-tile for every j_t
block.  The benchmark derives the number of tile writes from the iteration
order of the generated tile loops.
"""

import pytest

from repro.eval.tables import format_table
from repro.frontend import parse_program
from repro.ir.normalize import normalize_reductions
from repro.poly import build_schedule_tree, detect_scops
from repro.tactics import find_gemm_kernels
from repro.transforms import tile_band_chain

from conftest import write_result

PURE_GEMM = """
void matmul(int N, float C[N][N], float A[N][N], float B[N][N]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
}
"""

PROBLEM_SIZE = 1024
CROSSBAR = 256


def _tile_write_count(tile_order: tuple[str, str, str]) -> int:
    """Number of A-tile crossbar writes for a given tile-loop order.

    A new write is needed whenever the (i_t, k_t) pair of the innermost
    point-loop execution differs from the previous one (the micro-engine
    keeps the last programmed operand resident).
    """
    program = normalize_reductions(parse_program(PURE_GEMM))
    scop = detect_scops(program)[0]
    tree = build_schedule_tree(scop)
    match = find_gemm_kernels(scop, tree)[0]
    bands = match.band_chain(tree)
    tile_band = tile_band_chain(
        bands, {"i": CROSSBAR, "j": CROSSBAR, "k": CROSSBAR}, tile_loop_order=list(tile_order)
    )
    blocks = PROBLEM_SIZE // CROSSBAR
    # Enumerate the tile-loop iteration space in the generated order and
    # count transitions of the (i_t, k_t) operand tile.
    order = tile_band.dims  # e.g. ["i_t", "k_t", "j_t"]
    writes = 0
    previous = None
    indices = [0] * 3

    def iterate(depth):
        nonlocal writes, previous
        if depth == 3:
            point = dict(zip(order, indices))
            key = (point["i_t"], point["k_t"])
            if key != previous:
                writes += 1
                previous = key
            return
        for value in range(blocks):
            indices[depth] = value
            iterate(depth + 1)

    iterate(0)
    return writes


def test_tiling_interchange_reduces_crossbar_writes(benchmark):
    smart_writes = benchmark.pedantic(
        lambda: _tile_write_count(("i", "k", "j")), rounds=1, iterations=1
    )
    naive_writes = _tile_write_count(("i", "j", "k"))
    blocks = PROBLEM_SIZE // CROSSBAR

    table = format_table(
        [
            ("naive tile order (i_t, j_t, k_t)", naive_writes),
            ("paper tile order (i_t, k_t, j_t)", smart_writes),
            ("reduction factor", f"{naive_writes / smart_writes:.1f}x"),
        ],
        headers=("Configuration", "A-tile crossbar writes"),
    )
    write_result("ablation_tiling", table)

    # Paper order: each (i_t, k_t) tile written exactly once.
    assert smart_writes == blocks * blocks
    # Naive order: the A tile is rewritten for every j_t block.
    assert naive_writes == blocks * blocks * blocks
    assert naive_writes / smart_writes == pytest.approx(blocks)

"""Ablation: offload-everything vs selective (cost-model driven) offloading.

The paper offloads every detected kernel and reports a separate "Selective
Geomean" that excludes the GEMV-like kernels.  With the compute-intensity
heuristic enabled (``CompileOptions.selective``), the compiler itself keeps
the GEMV-like kernels on the host; the whole-suite geometric-mean energy
improvement must then match the selective geomean of the offload-everything
configuration for the GEMM-like kernels, and never be worse than 1x for the
kernels kept on the host.
"""

import pytest

from repro.compiler import CompileOptions
from repro.eval import evaluate_kernel, geometric_mean
from repro.eval.tables import format_table
from repro.workloads import PAPER_KERNELS, get_kernel

from conftest import write_result

DATASET = "SMALL"


def _energy_improvements(options):
    improvements = {}
    for name in PAPER_KERNELS:
        evaluation = evaluate_kernel(name, dataset=DATASET, options=options)
        improvements[name] = evaluation.energy_improvement
    return improvements


def test_selective_offloading(benchmark):
    offload_all = benchmark.pedantic(
        lambda: _energy_improvements(CompileOptions()), rounds=1, iterations=1
    )
    selective = _energy_improvements(CompileOptions.selective(threshold=32.0))

    rows = []
    for name in PAPER_KERNELS:
        rows.append(
            (
                name,
                get_kernel(name).category,
                f"{offload_all[name]:.2f}x",
                f"{selective[name]:.2f}x",
            )
        )
    rows.append(
        (
            "Geomean",
            "",
            f"{geometric_mean(offload_all.values()):.2f}x",
            f"{geometric_mean(selective.values()):.2f}x",
        )
    )
    table = format_table(
        rows,
        headers=("Kernel", "Category", "Offload everything", "Selective offload"),
    )
    write_result("ablation_selective", table)

    # Selective offloading keeps GEMV-like kernels on the host: their
    # "improvement" is exactly 1x (same program), never a regression.
    for name in ("gesummv", "bicg", "mvt"):
        assert selective[name] == pytest.approx(1.0, rel=1e-6)
        assert offload_all[name] < 2.0
    # GEMM-like kernels are offloaded in both configurations.
    for name in ("2mm", "3mm", "gemm", "conv"):
        assert selective[name] == pytest.approx(offload_all[name], rel=1e-6)
        assert selective[name] > 1.0
    # The suite-wide geomean improves when the compiler is selective.
    assert geometric_mean(selective.values()) > geometric_mean(offload_all.values())

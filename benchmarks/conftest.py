"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; besides
timing the regeneration with ``pytest-benchmark``, it writes the formatted
result to ``benchmarks/results/`` so the numbers can be inspected and copied
into EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a formatted benchmark result under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR

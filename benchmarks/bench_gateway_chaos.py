"""Gateway chaos benchmark (PR 10 trajectory point).

Two studies on the self-healing wall-clock gateway:

1. **Seeded storm.**  A ≥1k-request open-loop Poisson run in which a
   seeded schedule injects hangs, crashes (both kill points), corrupt
   response frames, slow workers and deadline pressure, with hot spares,
   budgeted respawns and the hang watchdog enabled.  The invariant suite
   (:mod:`repro.gateway.chaos`) must hold in full: zero lost requests,
   an exact accounting partition across every worker incarnation,
   exactly-once billing, and every completed result bit-identical to a
   fault-free reference.

2. **Fault-free control.**  The same spec with every fault rate at zero:
   the resilience layer (watchdog armed, respawn budget available) must
   change *nothing* when nothing goes wrong — no failures, no sheds, no
   respawns, every request completed, and the same invariant suite green.

The acceptance gate asserts both studies' invariants, that the storm
actually injected faults (a storm that injects nothing proves nothing),
and that the pool healed (respawns/promotions occurred and the pool
finished with capacity).  Results go to ``BENCH_PR10.json``; wall-clock
durations are machine-dependent and excluded from the regression gate
(``tools/collect_bench.py`` gates only the scale-free metrics).

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway_chaos.py           # full
    PYTHONPATH=src python benchmarks/bench_gateway_chaos.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import platform
from dataclasses import replace
from pathlib import Path

from repro.gateway.chaos import ChaosSpec, run_chaos

#: (requests, offered rate) per mode.
FULL_SETUP = (1200, 250.0)
SMOKE_SETUP = (200, 200.0)

SEED = 10


def storm_spec(num_requests: int, rate_rps: float) -> ChaosSpec:
    return ChaosSpec(
        num_requests=num_requests,
        rate_rps=rate_rps,
        seed=SEED,
        num_workers=3,
        hot_spares=1,
        max_respawns=16,
        hang_timeout_s=0.5,
    )


def run_study(label: str, spec: ChaosSpec) -> dict:
    report = run_chaos(spec)
    load = report.load
    resilience = load.snapshot.get("resilience", {})
    print(
        f"  {label:<12} {load.offered:>5} offered -> {load.completed} "
        f"completed, {load.failed} failed, {load.rejected} rejected, "
        f"{load.deadline_exceeded} deadline-exceeded in "
        f"{load.duration_s:6.3f} s; "
        f"faults planned={sum(report.planned_faults.values())}, "
        f"respawns={resilience.get('respawns', 0)}, "
        f"hangs={resilience.get('hangs_detected', 0)}, "
        f"invariants={'ok' if report.ok else 'VIOLATED'}"
    )
    for violation in report.violations[:10]:
        print(f"    violation: {violation}")
    return report.to_dict()


def run_benchmark(smoke: bool = False) -> dict:
    num_requests, rate_rps = SMOKE_SETUP if smoke else FULL_SETUP
    print(
        f"gateway chaos benchmark: {num_requests} requests/study at "
        f"{rate_rps:g} rps (seed {SEED})"
    )
    spec = storm_spec(num_requests, rate_rps)
    storm = run_study("storm", spec)
    control = run_study(
        "control",
        replace(
            spec,
            hang_rate=0.0,
            crash_rate=0.0,
            corrupt_rate=0.0,
            slow_rate=0.0,
            deadline_rate=0.0,
            # The control asserts the resilience counters stay at zero,
            # so the watchdog must stay armed but generous: a slow
            # first-request compile on a loaded CI machine must not be
            # misread as a hang.
            hang_timeout_s=10.0,
        ),
    )
    storm_load = storm["load"]
    control_load = control["load"]
    control_resilience = control_load["snapshot"].get("resilience", {})
    return {
        "benchmark": "gateway_chaos",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "requests": storm_load["offered"],
        "storm_invariants_ok": float(all(storm["invariants"].values())),
        "control_invariants_ok": float(all(control["invariants"].values())),
        "storm_answered_fraction": storm_load["served_fraction"],
        "control_completed_fraction": (
            control_load["completed"] / control_load["offered"]
        ),
        "control_resilience_quiet": float(
            not any(control_resilience.values())
        ),
        "faults_planned": sum(storm["planned_faults"].values()),
        "respawns": storm_load["snapshot"]
        .get("resilience", {})
        .get("respawns", 0),
        "storm": storm,
        "control": control,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR10.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if payload["storm_invariants_ok"] != 1.0:
        failures.append("storm: resilience invariants violated")
    if payload["control_invariants_ok"] != 1.0:
        failures.append("control: invariants violated with no faults")
    if payload["storm_answered_fraction"] != 1.0:
        failures.append(
            f"storm: only {payload['storm_answered_fraction']:.3f} of "
            "offered requests answered"
        )
    if payload["control_completed_fraction"] != 1.0:
        failures.append(
            "control: not every request completed on a fault-free run"
        )
    if payload["control_resilience_quiet"] != 1.0:
        failures.append(
            "control: resilience counters fired with no faults injected"
        )
    if payload["faults_planned"] == 0:
        failures.append("storm: the seeded schedule injected no faults")
    if payload["respawns"] == 0:
        failures.append("storm: no respawns occurred (self-healing untested)")
    assert not failures, "; ".join(failures)
    print(
        f"all chaos acceptance checks passed "
        f"({payload['faults_planned']} faults over {payload['requests']} "
        f"requests, {payload['respawns']} respawns, invariants green)"
    )


if __name__ == "__main__":
    main()

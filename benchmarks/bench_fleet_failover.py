"""Fleet failover benchmark (PR 6 trajectory point).

Two studies on the fault-tolerant multi-device fleet tier:

1. **Wear-aware placement extends fleet lifetime.**  A heterogeneous
   fleet (one device joins pre-aged to most of its Eq. 1 endurance
   budget) serves the same GEMV trace under round-robin and wear-aware
   placement.  Fleet lifetime is the implied Eq. 1 lifetime of the
   *most-worn* device; wear-aware routing steers leases away from the
   aged device and must extend that minimum measurably.

2. **Graceful degradation under a fault storm.**  Half the fleet is
   killed mid-run (plus transient DMA faults); the fleet must keep
   serving — every request completes via retry/migration, responses stay
   bit-identical to the fault-free run, the ledger partition stays exact
   across tenants *and* devices, and throughput degrades in rough
   proportion to lost capacity instead of collapsing.

The acceptance gate asserts lifetime extension >= 1.5x, zero lost
requests in the storm, bit-identical completed payloads, an exact
fleet-wide accounting partition, and a storm throughput within
[0.25, 1.0) of fault-free.  Results go to ``BENCH_PR6.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_failover.py           # full
    PYTHONPATH=src python benchmarks/bench_fleet_failover.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

import numpy as np

from repro.eval import fleet_device_rows, fleet_implied_lifetime_years
from repro.eval.tenants import DEFAULT_CELL_ENDURANCE_WRITES
from repro.fleet import (
    DeviceKill,
    FaultPlan,
    FleetConfig,
    FleetServer,
    OpFaultRule,
)
from repro.serve import RequestStatus, TenantQuota

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

TENANTS = ("alpha", "beta", "gamma", "delta")

#: (matrix side, request count)
FULL_SETUP = (96, 64)
SMOKE_SETUP = (24, 20)

NUM_DEVICES = 4
SPACING_S = 4e-5


def make_trace(side: int, count: int) -> list[tuple[str, dict]]:
    rng = np.random.default_rng(2020)
    model = rng.random((side, side), dtype=np.float32)
    trace = []
    for index in range(count):
        arrays = {
            "A": model,
            "x": rng.random(side, dtype=np.float32),
            "y": np.zeros(side, dtype=np.float32),
        }
        trace.append((TENANTS[index % len(TENANTS)], arrays))
    return trace


def run_fleet(
    side: int,
    trace: list[tuple[str, dict]],
    placement: str,
    fault_plan: FaultPlan | None = None,
    initial_wear_bytes: tuple = (),
) -> dict:
    """Serve *trace* on one fleet configuration; returns a result row."""
    params = {"M": side, "N": side}
    config = FleetConfig(
        num_devices=NUM_DEVICES,
        batch_window_s=250e-6,
        max_batch_size=16,
        default_quota=TenantQuota(max_queue_depth=256),
        placement=placement,
        initial_wear_bytes=initial_wear_bytes,
        fault_plan=fault_plan,
    )
    with FleetServer(config) as fleet:
        handles = [
            fleet.submit(tenant, GEMV_SOURCE, params, arrays,
                         arrival_s=index * SPACING_S)
            for index, (tenant, arrays) in enumerate(trace)
        ]
        snapshot = fleet.drain()
        partition = fleet.verify_fleet_partition()
        rows = fleet_device_rows(fleet, DEFAULT_CELL_ENDURANCE_WRITES)
        completed = [
            handle for handle in handles
            if handle.status is RequestStatus.COMPLETED
        ]
        makespan_s = fleet.clock.now_s - handles[0].arrival_s
        return {
            "placement": placement,
            "completed": len(completed),
            "failed": sum(
                handle.status is RequestStatus.FAILED for handle in handles
            ),
            "rejected": sum(
                handle.status is RequestStatus.REJECTED for handle in handles
            ),
            "achieved_rps": len(completed) / makespan_s,
            "makespan_s": makespan_s,
            "fleet_lifetime_years": fleet_implied_lifetime_years(rows),
            "accounting_exact": bool(all(partition.values())),
            "device_rows": [
                {
                    "device_id": row.device_id,
                    "state": row.state,
                    "leases": row.leases,
                    "served": row.served,
                    "wear_bytes": row.wear_bytes,
                    "compensated_wear_bytes": row.compensated_wear_bytes,
                    "implied_lifetime_years": (
                        row.implied_lifetime_years
                        if row.implied_lifetime_years != float("inf")
                        else None
                    ),
                }
                for row in rows
            ],
            "fleet_stats": snapshot.get("fleet", {}),
            "results": {
                handle.request_id: handle.result() for handle in completed
            },
        }


def lifetime_study(side: int, trace: list[tuple[str, dict]]) -> dict:
    """Wear-aware vs round-robin on a heterogeneous-age fleet."""
    # Device 0 joins pre-aged to ~99% of its endurance budget; the other
    # devices are factory fresh.
    probe = FleetServer(FleetConfig(num_devices=1))
    crossbar_size = probe.ledger.crossbar_size_bytes
    probe.shutdown()
    budget = DEFAULT_CELL_ENDURANCE_WRITES * crossbar_size
    pre_aged = (int(budget * 0.99), 0, 0, 0)

    rows = {}
    for placement in ("round-robin", "wear-aware"):
        row = run_fleet(
            side, trace, placement, initial_wear_bytes=pre_aged
        )
        row.pop("results")
        rows[placement] = row
        print(
            f"  {placement:<12} fleet lifetime "
            f"{row['fleet_lifetime_years']:10.3f} y, aged-device extra wear "
            f"{row['device_rows'][0]['wear_bytes'] - pre_aged[0]:>8} B, "
            f"accounting-exact={row['accounting_exact']}"
        )
    extension = (
        rows["wear-aware"]["fleet_lifetime_years"]
        / rows["round-robin"]["fleet_lifetime_years"]
    )
    print(f"  wear-aware lifetime extension: {extension:.2f}x")
    return {
        "pre_aged_bytes": pre_aged[0],
        "rows": rows,
        "lifetime_extension_factor": extension,
    }


def failover_study(side: int, trace: list[tuple[str, dict]]) -> dict:
    """Kill half the fleet mid-run under transient faults; compare
    against the fault-free run of the same trace."""
    clean = run_fleet(side, trace, "wear-aware")
    storm_end_s = len(trace) * SPACING_S
    plan = FaultPlan(
        kills=[
            DeviceKill(0, storm_end_s * 0.3),
            DeviceKill(1, storm_end_s * 0.6),
        ],
        op_rules=[OpFaultRule("dma", 0.1, max_faults=8)],
        seed=2020,
    )
    storm = run_fleet(side, trace, "wear-aware", fault_plan=plan)

    clean_results = clean.pop("results")
    storm_results = storm.pop("results")
    mismatches = 0
    for request_id, storm_result in storm_results.items():
        reference = clean_results.get(request_id)
        if reference is None:
            continue
        for name in reference:
            if not np.array_equal(reference[name], storm_result[name]):
                mismatches += 1
    throughput_fraction = storm["achieved_rps"] / clean["achieved_rps"]
    print(
        f"  fault-free: {clean['achieved_rps']:10.1f} req/s; storm "
        f"({NUM_DEVICES - 2}/{NUM_DEVICES} devices survive): "
        f"{storm['achieved_rps']:10.1f} req/s "
        f"({throughput_fraction:.2f}x)"
    )
    print(
        f"  storm: completed {storm['completed']}/{len(trace)}, "
        f"retries {storm['fleet_stats'].get('retries', 0)}, migrations "
        f"{storm['fleet_stats'].get('migrations', 0)}, faults "
        f"{storm['fleet_stats'].get('faults_injected', 0)} "
        f"(recovered {storm['fleet_stats'].get('faults_recovered', 0)}), "
        f"bit-identical={mismatches == 0}"
    )
    return {
        "clean": clean,
        "storm": storm,
        "throughput_fraction": throughput_fraction,
        "bit_identical": mismatches == 0,
    }


def run_benchmark(smoke: bool = False) -> dict:
    side, count = SMOKE_SETUP if smoke else FULL_SETUP
    trace = make_trace(side, count)
    print(f"fleet failover benchmark: {NUM_DEVICES} devices, "
          f"{count} requests of {side}x{side} GEMV")
    print("lifetime study (heterogeneous-age fleet):")
    lifetime = lifetime_study(side, trace)
    print("failover study (fault storm kills half the fleet):")
    failover = failover_study(side, trace)
    return {
        "benchmark": "fleet_failover",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "matrix_side": side,
        "requests": count,
        "num_devices": NUM_DEVICES,
        "tenants": list(TENANTS),
        "lifetime_study": lifetime,
        "failover_study": failover,
        "lifetime_extension_factor": lifetime["lifetime_extension_factor"],
        "storm_throughput_fraction": failover["throughput_fraction"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR6.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if payload["lifetime_extension_factor"] < 1.5:
        failures.append(
            f"wear-aware placement extended fleet lifetime only "
            f"{payload['lifetime_extension_factor']:.2f}x over round-robin "
            f"(>= 1.5x required)"
        )
    storm = payload["failover_study"]["storm"]
    if storm["completed"] != payload["requests"]:
        failures.append(
            f"fault storm lost requests: {storm['completed']}/"
            f"{payload['requests']} completed"
        )
    if not payload["failover_study"]["bit_identical"]:
        failures.append(
            "storm responses diverged from the fault-free run"
        )
    for name, row in (
        ("clean", payload["failover_study"]["clean"]),
        ("storm", storm),
        ("round-robin", payload["lifetime_study"]["rows"]["round-robin"]),
        ("wear-aware", payload["lifetime_study"]["rows"]["wear-aware"]),
    ):
        if not row["accounting_exact"]:
            failures.append(f"{name}: fleet accounting partition not exact")
    fraction = payload["storm_throughput_fraction"]
    if not 0.25 <= fraction < 1.0:
        failures.append(
            f"storm throughput fraction {fraction:.2f} outside [0.25, 1.0) — "
            "degradation is not graceful"
        )
    assert not failures, "; ".join(failures)
    print(
        f"all fleet acceptance checks passed (lifetime extension "
        f"{payload['lifetime_extension_factor']:.2f}x, storm throughput "
        f"{fraction:.2f}x of fault-free)"
    )


if __name__ == "__main__":
    main()

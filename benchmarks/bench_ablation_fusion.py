"""Ablation: revisited kernel fusion (Listing 2) on vs off.

Measures, on the shared-input GEMM pair, what the fusion transformation buys:
half the crossbar cell writes (endurance), one runtime call instead of two
(offload overhead), and lower total energy.
"""

import numpy as np
import pytest

from repro import CompileOptions, OffloadExecutor, compile_source
from repro.eval.lifetime import SHARED_INPUT_GEMMS_SOURCE
from repro.eval.tables import format_table

from conftest import write_result

N = 48


def _run(enable_fusion: bool):
    # Pipeline-level ablation: fusion on/off is the named "default" vs
    # "no-fusion" pass pipeline, not a bespoke feature flag.
    options = CompileOptions(pipeline="default" if enable_fusion else "no-fusion")
    result = compile_source(SHARED_INPUT_GEMMS_SOURCE, options=options,
                            size_hint={"N": N})
    rng = np.random.default_rng(11)
    arrays = {
        "A": rng.random((N, N), dtype=np.float32),
        "B": rng.random((N, N), dtype=np.float32),
        "E": rng.random((N, N), dtype=np.float32),
        "C": np.zeros((N, N), dtype=np.float32),
        "D": np.zeros((N, N), dtype=np.float32),
    }
    outputs, report = OffloadExecutor().run(result.program, {"N": N}, arrays)
    return result, outputs, report


def test_fusion_ablation(benchmark):
    _, _, fused_report = benchmark.pedantic(
        lambda: _run(True), rounds=1, iterations=1
    )
    _, _, unfused_report = _run(False)

    rows = [
        ("crossbar cell writes", unfused_report.crossbar_cell_writes,
         fused_report.crossbar_cell_writes),
        ("kernel launches (BLAS calls)",
         sum(1 for c in unfused_report.runtime_calls if "Gemm" in c),
         sum(1 for c in fused_report.runtime_calls if "Gemm" in c)),
        ("host offload energy (uJ)",
         round(unfused_report.offload_energy_j * 1e6, 2),
         round(fused_report.offload_energy_j * 1e6, 2)),
        ("accelerator energy (uJ)",
         round(unfused_report.accelerator_energy_j * 1e6, 2),
         round(fused_report.accelerator_energy_j * 1e6, 2)),
        ("total energy (uJ)",
         round(unfused_report.total_energy_j * 1e6, 2),
         round(fused_report.total_energy_j * 1e6, 2)),
    ]
    table = format_table(rows, headers=("Metric", "No fusion", "Fusion (batched)"))
    write_result("ablation_fusion", table)

    # Endurance: the shared operand is written once instead of twice.
    assert unfused_report.crossbar_cell_writes == 2 * fused_report.crossbar_cell_writes
    # Offload overhead: one batched launch instead of two GEMM launches.
    assert fused_report.runtime_calls.count("polly_cimBlasGemmBatched") == 1
    assert unfused_report.runtime_calls.count("polly_cimBlasSGemm") == 2
    # Energy does not get worse by fusing.
    assert fused_report.total_energy_j <= unfused_report.total_energy_j


def test_fusion_preserves_results():
    fused_result, fused_out, _ = _run(True)
    _, unfused_out, _ = _run(False)
    np.testing.assert_allclose(fused_out["C"], unfused_out["C"], rtol=1e-4)
    np.testing.assert_allclose(fused_out["D"], unfused_out["D"], rtol=1e-4)
    assert fused_result.report.fusion_groups

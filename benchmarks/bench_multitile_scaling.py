"""Multi-tile scaling + compile-cache benchmark (PR 2 trajectory point).

Two measurements, written to ``BENCH_PR2.json``:

1. **Tile scaling** — every paper kernel offloaded with ``num_tiles`` in
   {1, 2, 4, 8}.  The crossbar geometry is shrunk (so the MEDIUM operands
   decompose into many shard blocks) and the reported accelerator latency
   must decrease monotonically with the tile count while the aggregate
   energy stays bit-identical (the scheduler's accounting invariant).
2. **Compile cache** — cold vs. warm ``compile_source()`` wall time per
   kernel; the warm path must be at least 5x faster.

Usage::

    PYTHONPATH=src python benchmarks/bench_multitile_scaling.py           # full
    PYTHONPATH=src python benchmarks/bench_multitile_scaling.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro import CimSystem, OffloadExecutor, SystemConfig, compile_source
from repro.compiler import CompileOptions, KernelCompileCache, compile_fingerprint
from repro.workloads import PAPER_KERNELS, get_kernel

TILE_COUNTS = (1, 2, 4, 8)

#: (dataset, crossbar geometry) — the crossbar is shrunk so every paper
#: kernel decomposes into enough shard blocks to feed 8 tiles.
FULL_SETUP = ("MEDIUM", 64)
SMOKE_SETUP = ("SMALL", 16)


def bench_tile_scaling(dataset: str, crossbar: int) -> list[dict]:
    results = []
    for name in PAPER_KERNELS:
        kernel = get_kernel(name)
        params = kernel.params(dataset)
        arrays = kernel.arrays(dataset, seed=11)
        compiled = compile_source(kernel.source, size_hint=params)
        latencies: dict[str, float] = {}
        energies: dict[str, float] = {}
        for tiles in TILE_COUNTS:
            system = CimSystem(SystemConfig(
                num_tiles=tiles, crossbar_rows=crossbar, crossbar_cols=crossbar,
            ))
            _, report = OffloadExecutor(system).run(compiled, params, arrays)
            latencies[str(tiles)] = report.accelerator_time_s
            energies[str(tiles)] = report.accelerator_energy_j
        ordered = [latencies[str(t)] for t in TILE_COUNTS]
        entry = {
            "kernel": name,
            "category": kernel.category,
            "dataset": dataset,
            "crossbar": crossbar,
            "latency_s": latencies,
            "speedup_at_4_tiles": round(ordered[0] / latencies["4"], 3),
            "energy_invariant": len(set(energies.values())) == 1,
            "monotonic": all(a >= b for a, b in zip(ordered, ordered[1:])),
        }
        results.append(entry)
        print(
            f"{name:8s} latency(tiles) "
            + "  ".join(f"{t}:{latencies[str(t)] * 1e3:8.3f}ms" for t in TILE_COUNTS)
            + f"  x4={entry['speedup_at_4_tiles']:5.2f}"
            + f"  energy-invariant={entry['energy_invariant']}"
        )
    return results


def bench_compile_cache(dataset: str) -> list[dict]:
    results = []
    for name in PAPER_KERNELS:
        kernel = get_kernel(name)
        params = kernel.params(dataset)
        # A private cache keeps this measurement independent of any compile
        # the scaling benchmark already did through the default cache.
        cache = KernelCompileCache()
        options = CompileOptions()
        start = time.perf_counter()
        cold_result = compile_source(
            kernel.source, options=options, size_hint=params, cache=cache
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_result = compile_source(
            kernel.source, options=options, size_hint=params, cache=cache
        )
        warm_s = time.perf_counter() - start
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        results.append(
            {
                "kernel": name,
                "fingerprint": compile_fingerprint(kernel.source, options, params)[:16],
                "cold_s": round(cold_s, 6),
                "warm_s": round(warm_s, 6),
                "speedup": round(speedup, 1),
                "identical_result": warm_result is cold_result,
            }
        )
        print(
            f"{name:8s} compile cold={cold_s * 1e3:8.3f}ms  "
            f"warm={warm_s * 1e3:8.3f}ms  speedup={speedup:9.1f}x"
        )
    return results


def run_benchmark(smoke: bool = False) -> dict:
    dataset, crossbar = SMOKE_SETUP if smoke else FULL_SETUP
    scaling = bench_tile_scaling(dataset, crossbar)
    cache = bench_compile_cache(dataset)
    return {
        "benchmark": "multitile_scaling",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "tile_counts": list(TILE_COUNTS),
        "tile_scaling": scaling,
        "compile_cache": cache,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR2.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    for entry in payload["tile_scaling"]:
        if not entry["energy_invariant"]:
            failures.append(f"{entry['kernel']}: energy depends on tile count")
        if not entry["monotonic"]:
            failures.append(f"{entry['kernel']}: latency not monotone in tiles")
        if entry["latency_s"]["4"] >= entry["latency_s"]["1"]:
            failures.append(f"{entry['kernel']}: no speedup at 4 tiles")
    for entry in payload["compile_cache"]:
        if entry["speedup"] < 5:
            failures.append(
                f"{entry['kernel']}: warm-cache compile only {entry['speedup']}x"
            )
    assert not failures, "; ".join(failures)
    print("all scaling/cache acceptance checks passed")


if __name__ == "__main__":
    main()

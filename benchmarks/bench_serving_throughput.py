"""Serving-throughput benchmark (PR 4 trajectory point).

Measures the multi-tenant serving layer against serialized single-request
execution on a GEMV-heavy inference-style load: four tenants stream GEMV
requests against one shared model matrix.  For each tile count and
offered-load factor the benchmark reports the achieved request throughput
(simulated requests/second), the dynamic-batching occupancy and the
latency percentiles, and verifies the serving layer's two hard
guarantees:

* every response is bit-identical to a direct
  :class:`~repro.codegen.executor.OffloadExecutor` run of the same
  program, and
* per-tenant energy/wear accounting partitions the device totals exactly
  (integer wear counters by ``==``, energy to float precision against the
  accelerator ledger).

The acceptance gate asserts that dynamic batching reaches at least 2x the
serialized throughput at 4 tiles.  Results go to ``BENCH_PR4.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro import (
    CimServer,
    CimSystem,
    OffloadExecutor,
    ServerConfig,
    SystemConfig,
    compile_source,
)
from repro.eval import tenant_usage_rows

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

TENANTS = ("alpha", "beta", "gamma", "delta")
TILE_COUNTS = (1, 2, 4)
LOAD_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)

#: (matrix side, request count) — the matrix fits one crossbar block, so
#: the serialized baseline pays a full programming per request while the
#: batcher pays one per lease.
FULL_SETUP = (128, 48)
SMOKE_SETUP = (32, 12)


def make_requests(side: int, count: int) -> list[tuple[str, dict]]:
    """The request trace: four tenants round-robin on one shared model."""
    rng = np.random.default_rng(2020)
    model = rng.random((side, side), dtype=np.float32)
    trace = []
    for index in range(count):
        tenant = TENANTS[index % len(TENANTS)]
        arrays = {
            "A": model,
            "x": rng.random(side, dtype=np.float32),
            "y": np.zeros(side, dtype=np.float32),
        }
        trace.append((tenant, arrays))
    return trace


def serialized_baseline(
    side: int, trace: list[tuple[str, dict]], tiles: int
) -> tuple[float, list[dict]]:
    """Serialized single-request execution: every request is a fresh,
    cold-crossbar `OffloadExecutor.run` (the pre-serving deployment model:
    one host program per caller).  Returns (throughput, reference outputs)."""
    params = {"M": side, "N": side}
    compiled = compile_source(GEMV_SOURCE, size_hint=params)
    total_s = 0.0
    references = []
    for _tenant, arrays in trace:
        system = CimSystem(SystemConfig(num_tiles=tiles))
        executor = OffloadExecutor(system)
        outputs, report = executor.run(
            compiled, params, {name: value.copy() for name, value in arrays.items()}
        )
        total_s += report.total_time_s
        references.append(outputs)
    return len(trace) / total_s, references


@contextmanager
def _kernel_wall_clock():
    """Accumulate real wall time spent executing kernels while the block
    runs.

    "Kernel time" is the wall time inside the actual compute and data
    movement: the accelerator's busy window executing a submitted
    command (:meth:`CIMAccelerator._on_start` — the START-register
    trigger that runs the microengine), crossbar weight programming
    (:meth:`CIMTile.write_matrix`), whole-program execution through the
    host engine (:meth:`OffloadExecutor.run`), and the host<->device DMA
    copies.  Everything outside those windows is the scheduler —
    admission, batching, lease bookkeeping, MMIO register programming,
    fault guards, accounting.  The split identifies the wall-clock
    bottleneck of the serving harness: once the engine and device
    execution are fast, further kernel speedups cannot raise serving
    throughput.
    """
    from repro.hw.accelerator import CIMAccelerator
    from repro.hw.tile import CIMTile
    from repro.runtime.api import CimRuntime

    bucket = {"kernel_s": 0.0, "calls": 0, "depth": 0}
    originals = [
        (OffloadExecutor, "run"),
        (CIMAccelerator, "_on_start"),
        (CIMTile, "write_matrix"),
        (CimRuntime, "cim_host_to_dev"),
        (CimRuntime, "cim_dev_to_host"),
    ]
    saved = [(cls, name, getattr(cls, name)) for cls, name in originals]

    def _timed(original):
        def timed(self, *args, **kwargs):
            # Nested instrumented calls (DMA inside an engine run) must
            # not be double-counted; only the outermost call accrues.
            bucket["depth"] += 1
            start = time.perf_counter()
            try:
                return original(self, *args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                bucket["depth"] -= 1
                if bucket["depth"] == 0:
                    bucket["kernel_s"] += elapsed
                    bucket["calls"] += 1

        return timed

    for cls, name, original in saved:
        setattr(cls, name, _timed(original))
    try:
        yield bucket
    finally:
        for cls, name, original in saved:
            setattr(cls, name, original)


def run_server(
    side: int,
    trace: list[tuple[str, dict]],
    tiles: int,
    offered_rps: float,
    references: list[dict],
) -> dict:
    """One serving run at a fixed offered load; returns the result row."""
    params = {"M": side, "N": side}
    config = ServerConfig(
        num_tiles=tiles,
        batch_window_s=250e-6,
        max_batch_size=16,
    )
    spacing_s = 1.0 / offered_rps
    with CimServer(config) as server:
        handles = []
        wall_start = time.perf_counter()
        with _kernel_wall_clock() as kernel_wall:
            for index, (tenant, arrays) in enumerate(trace):
                handles.append(
                    server.submit(
                        tenant,
                        GEMV_SOURCE,
                        params,
                        arrays,
                        arrival_s=index * spacing_s,
                    )
                )
            snapshot = server.drain()
        wall_s = time.perf_counter() - wall_start
        kernel_fraction = kernel_wall["kernel_s"] / wall_s if wall_s > 0 else 0.0

        # --- hard guarantee 1: bit-identical responses ----------------
        mismatches = 0
        for handle, reference in zip(handles, references):
            served = handle.result()
            for name in reference:
                if not np.array_equal(reference[name], served[name]):
                    mismatches += 1
        # --- hard guarantee 2: exact accounting partition -------------
        partition = server.ledger.verify_partition(server.system.accelerator)
        tenant_wear = sum(
            account.wear_bytes for account in server.ledger.tenants.values()
        )
        wear_exact = tenant_wear == server.system.accelerator.total_cell_writes()
        tenant_energy = math.fsum(
            usage.energy_j for usage in server.ledger.all_usages()
        )
        device_energy = server.ledger.device_energy_j
        energy_exact = math.isclose(
            tenant_energy + server.ledger.housekeeping_energy_j,
            device_energy,
            rel_tol=1e-12,
            abs_tol=1e-24,
        )

        makespan_s = server.clock.now_s - handles[0].arrival_s
        achieved_rps = len(handles) / makespan_s
        return {
            "tiles": tiles,
            "offered_rps": round(offered_rps, 1),
            "achieved_rps": round(achieved_rps, 1),
            "makespan_s": makespan_s,
            "mean_batch_occupancy": snapshot["batching"]["mean_occupancy"],
            "batches": snapshot["batching"]["batches"],
            "p50_latency_s": snapshot["latency_s"]["p50"],
            "p99_latency_s": snapshot["latency_s"]["p99"],
            "compile_cache_hit_rate": snapshot["compile_cache"]["hit_rate"],
            # Wall-clock breakdown of the serving harness itself: the
            # share of real time spent executing kernels vs. scheduling
            # (admission + batching + leases + accounting).
            "wall_s": round(wall_s, 6),
            "kernel_wall_s": round(kernel_wall["kernel_s"], 6),
            "kernel_time_fraction": round(kernel_fraction, 4),
            "bottleneck": "kernel" if kernel_fraction >= 0.5 else "scheduling",
            "bit_identical": mismatches == 0,
            "accounting_exact": bool(
                all(partition.values()) and wear_exact and energy_exact
            ),
            "tenant_rows": [
                {
                    "tenant": row.tenant,
                    "completed": row.completed,
                    "energy_j": row.energy_j,
                    "wear_bytes": row.wear_bytes,
                    "implied_lifetime_years": (
                        row.implied_lifetime_years
                        if row.implied_lifetime_years != float("inf")
                        else None
                    ),
                }
                for row in tenant_usage_rows(server)
            ],
        }


def run_benchmark(smoke: bool = False) -> dict:
    side, count = SMOKE_SETUP if smoke else FULL_SETUP
    trace = make_requests(side, count)
    results = []
    speedup_at_4_tiles = 0.0
    for tiles in TILE_COUNTS:
        baseline_rps, references = serialized_baseline(side, trace, tiles)
        print(
            f"tiles={tiles}: serialized baseline "
            f"{baseline_rps:10.1f} req/s (cold crossbar per request)"
        )
        for factor in LOAD_FACTORS:
            row = run_server(
                side, trace, tiles, offered_rps=factor * baseline_rps,
                references=references,
            )
            row["load_factor"] = factor
            row["serialized_rps"] = round(baseline_rps, 1)
            row["speedup_vs_serialized"] = round(
                row["achieved_rps"] / baseline_rps, 2
            )
            results.append(row)
            if tiles == 4:
                speedup_at_4_tiles = max(
                    speedup_at_4_tiles, row["speedup_vs_serialized"]
                )
            print(
                f"  load {factor:4.1f}x -> {row['achieved_rps']:10.1f} req/s "
                f"({row['speedup_vs_serialized']:5.2f}x), occupancy "
                f"{row['mean_batch_occupancy']:5.2f}, p99 "
                f"{row['p99_latency_s'] * 1e6:8.1f}us, "
                f"bit-identical={row['bit_identical']}, "
                f"accounting-exact={row['accounting_exact']}"
            )
    fractions = [row["kernel_time_fraction"] for row in results]
    mean_kernel_fraction = round(sum(fractions) / len(fractions), 4)
    bottleneck = "kernel" if mean_kernel_fraction >= 0.5 else "scheduling"
    print(
        f"wall-clock bottleneck: {bottleneck} "
        f"(kernels take {mean_kernel_fraction:.0%} of harness wall time)"
    )
    return {
        "benchmark": "serving_throughput",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "matrix_side": side,
        "requests": count,
        "tenants": list(TENANTS),
        "tile_counts": list(TILE_COUNTS),
        "load_factors": list(LOAD_FACTORS),
        "speedup_at_4_tiles": speedup_at_4_tiles,
        "kernel_time_fraction": mean_kernel_fraction,
        "bottleneck": bottleneck,
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR4.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    for row in payload["results"]:
        if not row["bit_identical"]:
            failures.append(
                f"tiles={row['tiles']} load={row['load_factor']}: responses "
                "diverged from direct OffloadExecutor runs"
            )
        if not row["accounting_exact"]:
            failures.append(
                f"tiles={row['tiles']} load={row['load_factor']}: tenant "
                "accounting does not sum to the device totals"
            )
    # The 2x acceptance gate applies to the full-size run; the smoke run
    # (tiny matrices, so fixed per-request driver costs dominate) only
    # sanity-checks that batching helps at all.
    required_speedup = 1.2 if payload["mode"] == "smoke" else 2.0
    if payload["speedup_at_4_tiles"] < required_speedup:
        failures.append(
            f"dynamic batching reached only {payload['speedup_at_4_tiles']}x "
            f"the serialized throughput at 4 tiles "
            f"(>= {required_speedup}x required)"
        )
    assert not failures, "; ".join(failures)
    print(
        f"all serving acceptance checks passed "
        f"(speedup at 4 tiles: {payload['speedup_at_4_tiles']}x)"
    )


if __name__ == "__main__":
    main()

"""Wall-clock gateway benchmark (PR 9 trajectory point).

Three studies on the process-pool serving gateway:

1. **Capacity probe.**  A short back-to-back burst (Poisson plan at an
   offered rate far above capacity, so every request fires immediately)
   measures the pool's sustainable throughput on this machine.

2. **Open-loop Poisson serving.**  The headline study: >= 10k requests
   offered at ~70% of measured capacity, latency measured on the *wall
   clock* — real seconds through real worker processes, not simulated
   time.  Reports p50/p99/mean/max latency, achieved throughput and
   per-worker utilization; the pool must serve every request and the
   exactly-once accounting partition must reconcile.

3. **Trace-resampled arrivals.**  The golden serving trace's recorded
   arrival pattern, tiled/amplified to ~50% of capacity with seeded
   jitter, its submissions replayed byte-for-byte — the recorded
   workload under wall-clock load, including its deliberately failing
   request.

As the correctness leg, the differential gate drives the golden trace
through VirtualClock mode and the wall-clock pool and requires
bit-identical responses and accounting (see
:mod:`repro.gateway.differential`).

The acceptance gate asserts: every offered request answered, zero
rejections, the expected failure count (the trace study inherits the
recording's one bad submission per cycle), an exact accounting
partition in every study, and a bit-identical differential.  Results go
to ``BENCH_PR9.json``.  Latency/throughput numbers are machine-dependent
and deliberately excluded from the regression gate
(``tools/collect_bench.py`` gates only the scale-free metrics).

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway_wallclock.py           # full
    PYTHONPATH=src python benchmarks/bench_gateway_wallclock.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import tempfile
from pathlib import Path

from repro.gateway import (
    AsyncGateway,
    GatewayConfig,
    run_differential,
    run_open_loop,
    synthetic_gemv_workload,
    trace_workload,
)
from repro.gateway.differential import gateway_config_from_trace
from repro.trace.arrivals import poisson_plan, trace_plan
from repro.trace.schema import load_trace

GOLDEN_TRACE = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "traces"
    / "serve_multitenant.jsonl"
)

NUM_WORKERS = 2

#: (probe requests, poisson requests, trace requests)
FULL_SETUP = (300, 10_000, 1_200)
SMOKE_SETUP = (60, 300, 120)


async def open_loop_study(
    config: GatewayConfig, plan, workload, label: str
) -> dict:
    """One full gateway lifecycle: start, offer the plan, drain, verify."""
    gateway = AsyncGateway(config)
    async with gateway:
        report = await run_open_loop(gateway, plan, workload)
        await gateway.drain()
        checks = gateway.verify_partition()
    workers = report.snapshot["gateway"]["workers"]
    print(
        f"  {label:<14} {report.offered:>6} offered at "
        f"{report.offered_rate_rps:7.1f} rps -> {report.throughput_rps:7.1f} "
        f"completed/s, p50={report.latency_p50_s * 1e3:6.2f} ms "
        f"p99={report.latency_p99_s * 1e3:6.2f} ms, util "
        + ", ".join(
            f"w{wid}={row['utilization']:.2f}" for wid, row in sorted(workers.items())
        )
        + f", partition={'ok' if all(checks.values()) else 'BROKEN'}"
    )
    row = report.to_dict()
    row["partition_ok"] = bool(all(checks.values()))
    return row


async def run_studies(
    probe_n: int, poisson_n: int, trace_n: int, cache_dir: str
) -> dict:
    trace = load_trace(GOLDEN_TRACE)

    # Study 1: capacity probe — offered far above capacity, so the
    # generator never sleeps and throughput is the pool's ceiling.
    probe = await open_loop_study(
        GatewayConfig(num_workers=NUM_WORKERS, cache_dir=cache_dir),
        poisson_plan(probe_n, rate_rps=1e6, seed=9),
        synthetic_gemv_workload(seed=9),
        "capacity probe",
    )
    capacity_rps = probe["throughput_rps"]

    # Study 2: the headline — open-loop Poisson at ~70% of capacity.
    poisson = await open_loop_study(
        GatewayConfig(num_workers=NUM_WORKERS, cache_dir=cache_dir),
        poisson_plan(poisson_n, rate_rps=0.7 * capacity_rps, seed=9),
        synthetic_gemv_workload(seed=9),
        "poisson",
    )

    # Study 3: the recorded trace's own arrival pattern, amplified to
    # ~50% of capacity, submissions replayed byte-for-byte.
    base_rate = trace_plan(trace, num_requests=trace_n).mean_rate_rps
    trace_study = await open_loop_study(
        gateway_config_from_trace(trace, num_workers=NUM_WORKERS, cache_dir=cache_dir),
        trace_plan(
            trace,
            num_requests=trace_n,
            amplify=(0.5 * capacity_rps) / base_rate,
            jitter_s=1e-3,
            seed=9,
        ),
        trace_workload(trace),
        "trace arrivals",
    )
    # The recording's failing submissions fail identically under load:
    # the expected count is how often the plan cycles through them.
    # (Recorded *rejections* are quota decisions — with the gateway's
    # quotas off those submissions complete, so only 'failed' counts.)
    failing = {
        rid
        for rid, response in trace.responses().items()
        if response["status"] == "failed"
    }
    num_submissions = len(trace.submissions())
    trace_study["expected_failed"] = sum(
        1 for index in range(trace_study["offered"])
        if (index % num_submissions) + 1 in failing
    )
    return {
        "capacity_probe": probe,
        "poisson_study": poisson,
        "trace_study": trace_study,
    }


def run_benchmark(smoke: bool = False) -> dict:
    probe_n, poisson_n, trace_n = SMOKE_SETUP if smoke else FULL_SETUP
    print(
        f"gateway wall-clock benchmark: {NUM_WORKERS} worker processes, "
        f"{poisson_n} Poisson + {trace_n} trace-driven requests"
    )
    with tempfile.TemporaryDirectory(prefix="gateway-bench-cache-") as cache_dir:
        studies = asyncio.run(run_studies(probe_n, poisson_n, trace_n, cache_dir))
        print("differential (wall-clock vs VirtualClock on the golden trace):")
        differential = run_differential(
            load_trace(GOLDEN_TRACE), num_workers=NUM_WORKERS, cache_dir=cache_dir
        )
    print(f"  {differential.diff.summary()}")
    poisson = studies["poisson_study"]
    return {
        "benchmark": "gateway_wallclock",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "num_workers": NUM_WORKERS,
        "requests": poisson["offered"],
        "capacity_rps": studies["capacity_probe"]["throughput_rps"],
        "throughput_rps": poisson["throughput_rps"],
        "latency_p50_s": poisson["latency_p50_s"],
        "latency_p99_s": poisson["latency_p99_s"],
        "served_fraction": min(
            studies[name]["served_fraction"]
            for name in ("capacity_probe", "poisson_study", "trace_study")
        ),
        "differential_identical": differential.identical,
        "differential_requests": differential.num_requests,
        "studies": studies,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR9.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    studies = payload["studies"]
    for name in ("capacity_probe", "poisson_study", "trace_study"):
        study = studies[name]
        if study["served_fraction"] != 1.0:
            failures.append(
                f"{name}: only {study['served_fraction']:.3f} of offered "
                "requests answered"
            )
        if study["rejected"]:
            failures.append(f"{name}: {study['rejected']} rejections (quotas off)")
        if not study["partition_ok"]:
            failures.append(f"{name}: accounting partition not exact")
    for name in ("capacity_probe", "poisson_study"):
        if studies[name]["failed"]:
            failures.append(f"{name}: {studies[name]['failed']} requests failed")
    trace_study = studies["trace_study"]
    if trace_study["failed"] != trace_study["expected_failed"]:
        failures.append(
            f"trace_study: {trace_study['failed']} failures, expected "
            f"{trace_study['expected_failed']} (the recording's bad "
            "submissions, cycled)"
        )
    if not payload["differential_identical"]:
        failures.append("wall-clock vs VirtualClock differential is not identical")
    if payload["latency_p99_s"] <= 0.0:
        failures.append("poisson study measured no latency distribution")
    assert not failures, "; ".join(failures)
    print(
        f"all gateway acceptance checks passed (p99 "
        f"{payload['latency_p99_s'] * 1e3:.2f} ms at "
        f"{payload['requests']} requests, differential bit-identical)"
    )


if __name__ == "__main__":
    main()

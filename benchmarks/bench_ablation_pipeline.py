"""Ablation: named pass pipelines across the PolyBench suite.

Compiles every paper kernel through the three named pipelines —
``default`` (the full Figure 4 flow), ``no-fusion`` (fusion pass removed)
and ``detect-only`` (analysis without transformation) — and reports, per
pipeline, what was detected/offloaded, which runtime calls were emitted,
and the per-pass wall-time breakdown the pass manager records.  Writes
``BENCH_PIPELINES.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_pipeline.py           # full
    PYTHONPATH=src python benchmarks/bench_ablation_pipeline.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import platform
from collections import defaultdict
from pathlib import Path

from repro.compiler import CompileOptions, TdoCimCompiler
from repro.compiler.passes import resolve_pass_names
from repro.workloads import PAPER_KERNELS, get_kernel

PIPELINES = ("default", "no-fusion", "detect-only")


def run_benchmark(smoke: bool = False, dataset: str = "SMALL") -> dict:
    kernels = PAPER_KERNELS[:3] if smoke else PAPER_KERNELS
    rows = []
    pass_totals: dict[str, dict[str, float]] = {
        pipeline: defaultdict(float) for pipeline in PIPELINES
    }
    for name in kernels:
        kernel = get_kernel(name)
        for pipeline in PIPELINES:
            options = CompileOptions(pipeline=pipeline, enable_compile_cache=False)
            compiler = TdoCimCompiler(options)
            result = compiler.compile(kernel.source, size_hint=kernel.params(dataset))
            report = result.report
            for timing in report.pass_timings:
                pass_totals[pipeline][timing.name] += timing.wall_time_s
            rows.append(
                {
                    "kernel": name,
                    "pipeline": pipeline,
                    "passes": len(report.pass_timings),
                    "compile_time_s": sum(
                        t.wall_time_s for t in report.pass_timings
                    ),
                    "detected": len(result.matches),
                    "offloaded": report.offloaded_kernels,
                    "fusion_groups": len(report.fusion_groups),
                    "runtime_calls": list(report.runtime_calls_emitted),
                }
            )
    return {
        "benchmark": "pipeline_ablation",
        "dataset": dataset,
        "python": platform.python_version(),
        "pipelines": {
            pipeline: list(resolve_pass_names(pipeline)) for pipeline in PIPELINES
        },
        "rows": rows,
        "pass_wall_time_s": {
            pipeline: dict(totals) for pipeline, totals in pass_totals.items()
        },
    }


def format_rows(data: dict) -> str:
    lines = [
        f"{'kernel':<10s} {'pipeline':<12s} {'detected':>8s} {'offloaded':>9s} "
        f"{'fused':>5s} {'compile ms':>10s}  runtime calls"
    ]
    for row in data["rows"]:
        lines.append(
            f"{row['kernel']:<10s} {row['pipeline']:<12s} {row['detected']:>8d} "
            f"{row['offloaded']:>9d} {row['fusion_groups']:>5d} "
            f"{row['compile_time_s'] * 1e3:>10.3f}  {', '.join(row['runtime_calls']) or '-'}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI run")
    parser.add_argument("--dataset", default="SMALL")
    parser.add_argument(
        "--output", default="BENCH_PIPELINES.json", help="JSON output path"
    )
    args = parser.parse_args()

    data = run_benchmark(smoke=args.smoke, dataset=args.dataset)
    table = format_rows(data)
    print(table)

    # Sanity: detect-only never transforms, default never detects less.
    for row in data["rows"]:
        if row["pipeline"] == "detect-only":
            assert row["offloaded"] == 0 and not row["runtime_calls"]
        if row["pipeline"] == "no-fusion":
            assert row["fusion_groups"] == 0

    Path(args.output).write_text(json.dumps(data, indent=2) + "\n")
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "ablation_pipeline.txt").write_text(table + "\n")
    print(f"\nwrote {args.output} and benchmarks/results/ablation_pipeline.txt")


if __name__ == "__main__":
    main()

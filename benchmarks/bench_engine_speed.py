"""Engine speed benchmark: interpreter vs. vectorized execution.

Times the reference tree-walking interpreter against the compiled
vectorized engine (and its einsum "fast" mode) on host-executed PolyBench
kernels, and writes ``BENCH_PR1.json`` with per-kernel wall times and
speedups — the first point of the performance trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speed.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_speed.py --smoke    # CI

The full run times the interpreter once per kernel (it is the slow thing
being measured — a 256x256x256 GEMM takes on the order of a minute) and the
vectorized engines over several repetitions.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.frontend import parse_program
from repro.ir import make_engine
from repro.ir.normalize import normalize_reductions
from repro.workloads.polybench import KERNELS

#: (kernel, params, headline size) per benchmark point.
FULL_CASES = [
    ("gemm", {"NI": 256, "NJ": 256, "NK": 256, "alpha": 1.5, "beta": 1.2}, 256),
    ("2mm", {"NI": 128, "NJ": 128, "NK": 128, "NL": 128, "alpha": 1.5, "beta": 1.2}, 128),
    ("mvt", {"N": 512}, 512),
    ("conv", {"OH": 96, "OW": 96, "KH": 5, "KW": 5, "alpha": 1.0}, 96),
]

SMOKE_CASES = [
    ("gemm", {"NI": 24, "NJ": 24, "NK": 24, "alpha": 1.5, "beta": 1.2}, 24),
    ("mvt", {"N": 48}, 48),
    ("conv", {"OH": 16, "OW": 16, "KH": 3, "KW": 3, "alpha": 1.0}, 16),
]


def _time_engine(program, engine_name, params, arrays, repeats=1) -> float:
    best = float("inf")
    for _ in range(repeats):
        engine = make_engine(program, engine=engine_name)
        start = time.perf_counter()
        engine.run(params, arrays)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(smoke: bool = False) -> dict:
    cases = SMOKE_CASES if smoke else FULL_CASES
    results = []
    for name, params, size in cases:
        kernel = KERNELS[name]
        program = normalize_reductions(parse_program(kernel.source))
        arrays = kernel.init_arrays(params, 0)
        vec_s = _time_engine(program, "vectorized", params, arrays, repeats=3)
        fast_s = _time_engine(program, "vectorized-fast", params, arrays, repeats=3)
        interp_s = _time_engine(program, "interpreter", params, arrays, repeats=1)
        speedup = interp_s / vec_s if vec_s > 0 else float("inf")
        results.append(
            {
                "kernel": name,
                "category": kernel.category,
                "size": size,
                "params": params,
                "interpreter_s": round(interp_s, 6),
                "vectorized_s": round(vec_s, 6),
                "vectorized_fast_s": round(fast_s, 6),
                "speedup": round(speedup, 2),
                "speedup_fast": round(interp_s / fast_s, 2) if fast_s > 0 else None,
            }
        )
        print(
            f"{name:8s} size={size:4d}  interp={interp_s:9.4f}s  "
            f"vectorized={vec_s:8.4f}s  fast={fast_s:8.4f}s  "
            f"speedup={speedup:9.1f}x"
        )
    return {
        "benchmark": "engine_speed",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args()
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not args.smoke:
        gemm_points = [
            r
            for r in payload["results"]
            if r["category"] == "gemm-like" and r["size"] >= 256
        ]
        assert gemm_points and all(r["speedup"] >= 10 for r in gemm_points), (
            "expected >= 10x speedup on GEMM-class kernels at size >= 256"
        )


if __name__ == "__main__":
    main()

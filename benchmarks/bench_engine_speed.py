"""Engine speed benchmark: interpreter vs. the engine lowering tiers.

Times the reference tree-walking interpreter against the compiled
engines — generic vectorized (gather), the exact slice-folding ``fast``
default, the optional ``native`` C backend, and the legacy einsum
``vectorized-fast`` mode — on host-executed PolyBench kernels.  Writes
two result files:

* ``BENCH_PR1.json`` — per-kernel wall times and speedups (the first
  point of the performance trajectory, extended with the new tiers);
* ``BENCH_PR8.json`` — the lowering coverage histogram: which tier every
  PolyBench loop nest lands on, and the fraction past the generic
  vectorized tier (the PR 8 gate: >= 90% must slice-fold or better).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speed.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_speed.py --smoke    # CI

The full run times the interpreter once per kernel (it is the slow thing
being measured — a 256x256x256 GEMM takes on the order of a minute) and the
compiled engines over several repetitions.  ``--require-native`` exits
with code 3 ("skipped") when the optional C toolchain is unavailable, so
``repro bench`` reports a visible skip instead of a failure.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.frontend import parse_program
from repro.ir import make_engine
from repro.ir.engine import native_available
from repro.ir.engine.lowering import program_lowering_report, tier_histogram
from repro.ir.normalize import normalize_reductions
from repro.workloads.polybench import KERNELS

#: (kernel, params, headline size) per benchmark point.
FULL_CASES = [
    ("gemm", {"NI": 256, "NJ": 256, "NK": 256, "alpha": 1.5, "beta": 1.2}, 256),
    ("2mm", {"NI": 128, "NJ": 128, "NK": 128, "NL": 128, "alpha": 1.5, "beta": 1.2}, 128),
    ("mvt", {"N": 512}, 512),
    ("conv", {"OH": 96, "OW": 96, "KH": 5, "KW": 5, "alpha": 1.0}, 96),
]

SMOKE_CASES = [
    ("gemm", {"NI": 24, "NJ": 24, "NK": 24, "alpha": 1.5, "beta": 1.2}, 24),
    ("mvt", {"N": 48}, 48),
    ("conv", {"OH": 16, "OW": 16, "KH": 3, "KW": 3, "alpha": 1.0}, 16),
]


def _time_engine(program, engine_name, params, arrays, repeats=1) -> float:
    best = float("inf")
    for _ in range(repeats):
        engine = make_engine(program, engine=engine_name)
        start = time.perf_counter()
        engine.run(params, arrays)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(smoke: bool = False) -> dict:
    cases = SMOKE_CASES if smoke else FULL_CASES
    with_native = native_available()
    results = []
    for name, params, size in cases:
        kernel = KERNELS[name]
        program = normalize_reductions(parse_program(kernel.source))
        arrays = kernel.init_arrays(params, 0)
        vec_s = _time_engine(program, "vectorized", params, arrays, repeats=3)
        fold_s = _time_engine(program, "fast", params, arrays, repeats=3)
        einsum_s = _time_engine(program, "vectorized-fast", params, arrays, repeats=3)
        native_s = (
            _time_engine(program, "native", params, arrays, repeats=3)
            if with_native
            else None
        )
        interp_s = _time_engine(program, "interpreter", params, arrays, repeats=1)
        speedup = interp_s / vec_s if vec_s > 0 else float("inf")
        results.append(
            {
                "kernel": name,
                "category": kernel.category,
                "size": size,
                "params": params,
                "interpreter_s": round(interp_s, 6),
                "vectorized_s": round(vec_s, 6),
                "fast_s": round(fold_s, 6),
                "native_s": round(native_s, 6) if native_s is not None else None,
                "vectorized_fast_s": round(einsum_s, 6),
                "speedup": round(speedup, 2),
                "speedup_fold": round(interp_s / fold_s, 2) if fold_s > 0 else None,
                "speedup_native": (
                    round(interp_s / native_s, 2)
                    if native_s
                    else None
                ),
                "speedup_fast": round(interp_s / einsum_s, 2) if einsum_s > 0 else None,
            }
        )
        native_txt = f"native={native_s:8.4f}s  " if native_s is not None else ""
        print(
            f"{name:8s} size={size:4d}  interp={interp_s:9.4f}s  "
            f"vectorized={vec_s:8.4f}s  fold={fold_s:8.4f}s  {native_txt}"
            f"speedup={speedup:9.1f}x"
        )
    return {
        "benchmark": "engine_speed",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "native_available": with_native,
        "results": results,
    }


def run_coverage(smoke: bool = False) -> dict:
    """Lowering-tier coverage across every PolyBench kernel.

    Tiers are a static property of each nest (independent of problem
    size), so smoke and full runs report identical coverage numbers —
    only the timing file differs between modes.
    """
    kernels = {}
    totals = {"interpreter": 0, "vectorized": 0, "fold": 0, "native": 0}
    native_totals = dict(totals)
    for name in sorted(KERNELS):
        program = normalize_reductions(parse_program(KERNELS[name].source))
        report = program_lowering_report(program, native=False)
        hist = tier_histogram(report)
        native_hist = tier_histogram(program_lowering_report(program, native=True))
        kernels[name] = {
            "nests": [
                {"nest": nest.nest, "tier": nest.tier, "reason": nest.reason}
                for nest in report
            ],
            "histogram": hist,
            "histogram_native": native_hist,
        }
        for tier, count in hist.items():
            totals[tier] += count
        for tier, count in native_hist.items():
            native_totals[tier] += count
    nest_count = sum(totals.values())
    fast_nests = totals["fold"] + totals["native"]
    coverage = {
        "nest_count": nest_count,
        "histogram": totals,
        "histogram_native": native_totals,
        # The PR 8 gate: fraction of nests past the generic vectorized
        # tier with the default engine (no C toolchain required).
        "fold_or_better_fraction": (
            round(fast_nests / nest_count, 4) if nest_count else 0.0
        ),
        "native_eligible_fraction": (
            round(native_totals["native"] / nest_count, 4) if nest_count else 0.0
        ),
    }
    print(
        f"lowering coverage: {nest_count} nests, "
        f"{coverage['fold_or_better_fraction']:.0%} at fold tier or better, "
        f"{coverage['native_eligible_fraction']:.0%} native-eligible"
    )
    return {
        "benchmark": "engine_lowering",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "native_toolchain_present": native_available(),
        "coverage": coverage,
        "kernels": kernels,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI sanity runs"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
        help="where to write the timing JSON results",
    )
    parser.add_argument(
        "--coverage-output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR8.json"),
        help="where to write the lowering-coverage JSON results",
    )
    parser.add_argument(
        "--require-native",
        action="store_true",
        help="exit 3 (skipped) when the optional native C toolchain is absent",
    )
    args = parser.parse_args()
    if args.require_native and not native_available():
        print(
            "bench_engine_speed: SKIPPED — the optional native backend "
            "needs cffi plus a C compiler on PATH (set REPRO_NATIVE=1 and "
            "install a toolchain to enable it)"
        )
        sys.exit(3)
    payload = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    coverage = run_coverage(smoke=args.smoke)
    Path(args.coverage_output).write_text(json.dumps(coverage, indent=2) + "\n")
    print(f"wrote {args.coverage_output}")
    fraction = coverage["coverage"]["fold_or_better_fraction"]
    assert fraction >= 0.9, (
        f"lowering coverage regressed: only {fraction:.0%} of PolyBench "
        "nests are past the generic vectorized tier (gate: >= 90%)"
    )
    if not args.smoke:
        gemm_points = [
            r
            for r in payload["results"]
            if r["category"] == "gemm-like" and r["size"] >= 256
        ]
        assert gemm_points and all(r["speedup"] >= 10 for r in gemm_points), (
            "expected >= 10x speedup on GEMM-class kernels at size >= 256"
        )


if __name__ == "__main__":
    main()

"""Figure 5: system lifetime vs PCM cell endurance, naive vs smart mapping.

Two modes are benchmarked:

* the paper-scale analytical projection (4096x4096 byte-element matrices,
  Eq. (1)), which reproduces the years-scale curves and the 2x gap;
* the simulation-backed study (small matrices through the full compiler +
  accelerator), which verifies that kernel fusion really halves the number
  of crossbar cell writes.
"""

import pytest

from repro.eval import figure5, figure5_simulated, format_figure5

from conftest import write_result


def test_figure5_projected(benchmark):
    data = benchmark(figure5)
    text = format_figure5(data)
    write_result("fig5_lifetime_projected", text)
    # Paper shape: ~2x lifetime improvement, linear in endurance, and the
    # projected lifetimes fall in the years range of the paper's y-axis.
    assert data.lifetime_improvement == pytest.approx(2.0)
    naive = dict(data.naive_curve())
    smart = dict(data.smart_curve())
    assert smart[10e6] == pytest.approx(2 * naive[10e6])
    assert naive[40e6] == pytest.approx(4 * naive[10e6])
    assert 1.0 < naive[10e6] < 100.0
    assert 1.0 < smart[40e6] < 100.0


def test_figure5_simulated(benchmark):
    data = benchmark.pedantic(
        figure5_simulated, kwargs={"matrix_size": 48}, rounds=1, iterations=1
    )
    text = format_figure5(data)
    write_result("fig5_lifetime_simulated", text)
    assert data.write_volume_ratio == pytest.approx(2.0)
    assert data.lifetime_improvement == pytest.approx(2.0)
    # The simulated naive mapping programs the shared operand twice.
    assert data.naive.crossbar_bytes_written == pytest.approx(2 * 48 * 48)
    assert data.smart.crossbar_bytes_written == pytest.approx(48 * 48)

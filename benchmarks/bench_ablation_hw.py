"""Hardware ablations: double buffering and analog quantisation.

* Double buffering (micro-engine): overlapping operand DMA with crossbar
  compute should shorten the accelerator's kernel latency without changing
  energy or results.
* Quantized crossbar: running the same offloaded kernel with the 8-bit
  analog path (two 4-bit PCM devices per cell, shared ADC) must stay within
  a small relative error of the ideal-precision result while the energy
  accounting is unchanged (Table I charges per operation, not per bit
  pattern).
"""

import numpy as np
import pytest

from repro import OffloadExecutor, compile_source
from repro.eval.tables import format_table
from repro.system import CimSystem, SystemConfig
from repro.workloads import get_kernel

from conftest import write_result

DATASET = "SMALL"


def _run_gemm(config: SystemConfig):
    kernel = get_kernel("gemm")
    params = kernel.params(DATASET)
    arrays = kernel.arrays(DATASET, seed=5)
    result = compile_source(kernel.source, size_hint=params)
    system = CimSystem(config)
    outputs, report = OffloadExecutor(system).run(result.program, params, arrays)
    return outputs, report, kernel.numpy_reference(params, arrays)


def test_double_buffering_ablation(benchmark):
    _, with_db, _ = benchmark.pedantic(
        lambda: _run_gemm(SystemConfig(double_buffering=True)), rounds=1, iterations=1
    )
    _, without_db, _ = _run_gemm(SystemConfig(double_buffering=False))

    table = format_table(
        [
            ("accelerator latency (us)",
             f"{without_db.accelerator_time_s * 1e6:.1f}",
             f"{with_db.accelerator_time_s * 1e6:.1f}"),
            ("accelerator energy (uJ)",
             f"{without_db.accelerator_energy_j * 1e6:.2f}",
             f"{with_db.accelerator_energy_j * 1e6:.2f}"),
            ("GEMV operations", without_db.gemv_count, with_db.gemv_count),
        ],
        headers=("Metric", "No double buffering", "Double buffering"),
    )
    write_result("ablation_double_buffering", table)

    assert with_db.accelerator_time_s < without_db.accelerator_time_s
    assert with_db.accelerator_energy_j == pytest.approx(
        without_db.accelerator_energy_j, rel=1e-6
    )
    assert with_db.gemv_count == without_db.gemv_count


def test_quantized_crossbar_ablation(benchmark):
    ideal_out, ideal_report, reference = benchmark.pedantic(
        lambda: _run_gemm(SystemConfig.paper_default()), rounds=1, iterations=1
    )
    quant_out, quant_report, _ = _run_gemm(SystemConfig.quantized())

    ideal_err = np.abs(ideal_out["C"] - reference["C"]).max() / np.abs(reference["C"]).max()
    quant_err = np.abs(quant_out["C"] - reference["C"]).max() / np.abs(reference["C"]).max()
    table = format_table(
        [
            ("max relative error", f"{ideal_err:.2e}", f"{quant_err:.2e}"),
            ("accelerator energy (uJ)",
             f"{ideal_report.accelerator_energy_j * 1e6:.2f}",
             f"{quant_report.accelerator_energy_j * 1e6:.2f}"),
            ("crossbar cell writes",
             ideal_report.crossbar_cell_writes, quant_report.crossbar_cell_writes),
        ],
        headers=("Metric", "Ideal crossbar", "Quantized 2x4-bit crossbar"),
    )
    write_result("ablation_quantized", table)

    assert ideal_err < 1e-4
    assert quant_err < 0.05
    assert quant_report.crossbar_cell_writes == ideal_report.crossbar_cell_writes
    assert quant_report.accelerator_energy_j == pytest.approx(
        ideal_report.accelerator_energy_j, rel=1e-6
    )

"""Figure 6 (right): energy-delay-product and runtime improvement per kernel.

Regenerates the right panel of the paper's Figure 6.  Asserted shape: large
positive EDP improvements for the GEMM-like kernels (the paper peaks at
612x for gemm), negative (worse-than-host) EDP and runtime for the GEMV-like
kernels.
"""

import pytest

from repro.eval import figure6
from repro.eval.tables import format_table

from conftest import write_result

DATASET = "MEDIUM"


@pytest.fixture(scope="module")
def figure6_data():
    return figure6(dataset=DATASET)


def _edp_table(data):
    rows = [
        (
            row.kernel,
            row.category,
            f"{row.edp_improvement_signed:+.1f}x",
            f"{row.runtime_improvement_signed:+.1f}x",
        )
        for row in data.rows
    ]
    rows.append(("Average (geomean)", "", f"{data.edp_average:+.1f}x", ""))
    return format_table(
        rows, headers=("Kernel", "Category", "EDP improvement", "Runtime improvement")
    )


def test_figure6_edp_panel(benchmark, figure6_data):
    table = benchmark(_edp_table, figure6_data)
    write_result("fig6_edp_medium", table)

    best = figure6_data.best_edp_improvement
    for row in figure6_data.rows:
        if row.category == "gemm-like":
            assert row.edp_improvement > 10.0, row.kernel
            assert row.runtime_improvement > 1.0, row.kernel
        else:
            assert row.edp_improvement < 1.0, row.kernel
            assert row.runtime_improvement < 1.0, row.kernel
    # The peak EDP improvement is of the order the paper reports (612x);
    # accept the simulator being within roughly an order of magnitude.
    assert 60.0 < best < 10000.0
    # gemm is among the top EDP winners, as in the paper.
    gemm_row = figure6_data.row("gemm")
    assert gemm_row.edp_improvement > 0.5 * best


def test_figure6_runtime_follows_edp_trend(figure6_data):
    """EDP improvement = energy improvement x runtime improvement."""
    for row in figure6_data.rows:
        assert row.edp_improvement == pytest.approx(
            row.energy_improvement * row.runtime_improvement, rel=1e-9
        )

#!/usr/bin/env python3
"""Multi-tenant serving: many callers, one CIM device.

Three tenants stream GEMV inference requests against a shared model
matrix while a fourth runs its own private model.  The server batches
compatible requests onto crossbar leases (the matrix is programmed once
per batch, not once per request), enforces a wear quota expressed in
device-lifetime terms, and bills every tenant for exactly the energy and
crossbar wear it caused.

Run with:  PYTHONPATH=src python examples/multi_tenant_serving.py
"""

import numpy as np

from repro import CimServer, ServerConfig, TenantQuota
from repro.eval import format_tenant_table, tenant_usage_rows
from repro.hw.endurance import wear_budget_bytes

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

SIDE = 96
PARAMS = {"M": SIDE, "N": SIDE}


def main() -> None:
    rng = np.random.default_rng(42)
    shared_model = rng.random((SIDE, SIDE), dtype=np.float32)
    private_model = rng.random((SIDE, SIDE), dtype=np.float32)

    config = ServerConfig(num_tiles=2, batch_window_s=200e-6, max_batch_size=8)
    with CimServer(config) as server:
        # "dave" may cost at most a 1/4 share of a device that has to
        # survive 2000 simulated-seconds-per-10-years of this traffic.
        budget = wear_budget_bytes(
            cell_endurance_writes=25e6,
            crossbar_size_bytes=server.ledger.crossbar_size_bytes,
            min_lifetime_years=10.0,
            horizon_s=0.05,
            share=0.25,
        )
        server.set_quota("dave", TenantQuota(wear_budget_bytes=budget))
        print(f"dave's wear budget: {budget:.0f} crossbar bytes\n")

        handles = []
        arrival = 0.0
        for round_no in range(6):
            for tenant in ("alice", "bob", "carol"):
                arrival += 40e-6
                handles.append(
                    server.submit(
                        tenant,
                        GEMV_SOURCE,
                        PARAMS,
                        {
                            "A": shared_model,
                            "x": rng.random(SIDE, dtype=np.float32),
                            "y": np.zeros(SIDE, dtype=np.float32),
                        },
                        arrival_s=arrival,
                    )
                )
            arrival += 40e-6
            handles.append(
                server.submit(
                    "dave",
                    GEMV_SOURCE,
                    PARAMS,
                    {
                        "A": private_model,
                        "x": rng.random(SIDE, dtype=np.float32),
                        "y": np.zeros(SIDE, dtype=np.float32),
                    },
                    arrival_s=arrival,
                )
            )

        snapshot = server.drain()

        print("--- metrics snapshot ---")
        print(f"completed: {snapshot['requests']['completed']}, "
              f"rejected: {snapshot['requests']['rejected']}")
        print(f"batches: {snapshot['batching']['batches']} "
              f"(mean occupancy {snapshot['batching']['mean_occupancy']})")
        print(f"p50 latency: {snapshot['latency_s']['p50'] * 1e6:.1f} us, "
              f"p99: {snapshot['latency_s']['p99'] * 1e6:.1f} us")
        print(f"compile-cache hit rate: "
              f"{snapshot['compile_cache']['hit_rate']:.2f}\n")

        print("--- per-tenant bills (Eq. 1 lifetime at 25M-write cells) ---")
        print(format_tenant_table(tenant_usage_rows(server)))

        checks = server.ledger.verify_partition(server.system.accelerator)
        print(f"\naccounting partitions device totals: {all(checks.values())}")
        statuses = {}
        for handle in handles:
            statuses[handle.status.value] = statuses.get(handle.status.value, 0) + 1
        print(f"request statuses: {statuses}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reproduce the paper's evaluation (Figure 6) on the PolyBench kernels.

Compiles each of the seven evaluated kernels twice — plain host (``-O3``)
and TDO-CIM (``-O3 -enable-loop-tactics``) — runs the offloaded version on
the emulated system, and prints the energy / compute-intensity / EDP /
runtime comparison the paper plots in Figure 6, plus the geometric means.

Run with:  python examples/polybench_offload.py [DATASET]
where DATASET is one of MINI, SMALL, MEDIUM (default), LARGE.
"""

import sys

from repro.eval import figure6, format_figure6
from repro.workloads import PAPER_KERNELS, get_kernel


def main() -> None:
    dataset = sys.argv[1].upper() if len(sys.argv) > 1 else "MEDIUM"
    print(f"Evaluating {len(PAPER_KERNELS)} PolyBench kernels on dataset {dataset}")
    for name in PAPER_KERNELS:
        kernel = get_kernel(name)
        sizes = {k: v for k, v in kernel.params(dataset).items()
                 if k not in ("alpha", "beta")}
        print(f"  {name:8s} [{kernel.category:9s}] {kernel.description}  {sizes}")
    print()

    data = figure6(dataset=dataset)
    print(format_figure6(data))
    print()
    print("Paper reference points: 32.6x selective-geomean energy improvement,")
    print("612x peak EDP improvement, GEMV-like kernels losing on EDP.")
    print(f"This run: {data.selective_energy_geomean:.1f}x selective geomean, "
          f"{data.best_edp_improvement:.0f}x peak EDP "
          f"({max(data.rows, key=lambda r: r.edp_improvement).kernel}).")

    offload_summary = []
    for evaluation in data.evaluations:
        decisions = evaluation.compilation.report
        offload_summary.append(
            f"  {evaluation.kernel:8s}: {decisions.offloaded_kernels}/"
            f"{decisions.detected_kernels} kernels offloaded, calls: "
            f"{', '.join(decisions.runtime_calls_emitted)}"
        )
    print()
    print("Compiler decisions:")
    print("\n".join(offload_summary))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: transparently offload a GEMM kernel to the CIM accelerator.

This walks the paper's Listing 1 end to end:

1. write a plain C kernel (no pragmas, no API calls);
2. compile it with the TDO-CIM flow — Loop Tactics detects the GEMM and
   rewrites it into CIM runtime calls;
3. execute the compiled program on the emulated Arm-A7 + CIM system;
4. check the result against NumPy and look at the energy/latency report.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import OffloadExecutor, compile_source
from repro.ir import Interpreter, to_source

GEMM_SOURCE = """
void gemm(int M, int N, int K, float alpha, float beta,
          float C[M][N], float A[M][K], float B[K][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++) {
      C[i][j] = beta * C[i][j];
      for (int k = 0; k < K; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
"""


def main() -> None:
    # ------------------------------------------------------------------
    # 1+2. Compile: detection, optimisation and offloading are transparent.
    # ------------------------------------------------------------------
    result = compile_source(GEMM_SOURCE)
    print("=== compiler report " + "=" * 45)
    print(result.report.summary())
    print()
    print("=== generated code (compare with Listing 1 of the paper) " + "=" * 8)
    print(to_source(result.program))
    print()

    # ------------------------------------------------------------------
    # 3. Execute on the emulated system.
    # ------------------------------------------------------------------
    params = {"M": 96, "N": 96, "K": 96, "alpha": 1.5, "beta": 1.2}
    rng = np.random.default_rng(0)
    arrays = {
        "A": rng.random((96, 96), dtype=np.float32),
        "B": rng.random((96, 96), dtype=np.float32),
        "C": rng.random((96, 96), dtype=np.float32),
    }
    executor = OffloadExecutor()
    outputs, report = executor.run(result.program, params, arrays)

    # ------------------------------------------------------------------
    # 4. Verify against NumPy and inspect the report.
    # ------------------------------------------------------------------
    reference = params["beta"] * arrays["C"] + params["alpha"] * (
        arrays["A"].astype(np.float64) @ arrays["B"].astype(np.float64)
    )
    max_err = np.abs(outputs["C"] - reference).max()
    print("=== execution report " + "=" * 44)
    print(f"max |error| vs NumPy:        {max_err:.3e}")
    print(f"runtime calls executed:      {len(report.runtime_calls)}")
    print(f"GEMV operations on crossbar: {report.gemv_count}")
    print(f"crossbar cell writes:        {report.crossbar_cell_writes}")
    print(f"MACs per CIM write:          {report.macs_per_cim_write:.1f}")
    print(f"accelerator energy:          {report.accelerator_energy_j * 1e6:.2f} uJ")
    print(f"host offload overhead:       {report.offload_energy_j * 1e6:.2f} uJ")
    print(f"total energy:                {report.total_energy_j * 1e6:.2f} uJ")
    print(f"total time:                  {report.total_time_s * 1e6:.1f} us")
    print(f"energy-delay product:        {report.edp:.3e} J*s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""PCM endurance study: the paper's Figure 5 plus crossbar wear inspection.

Part 1 regenerates Figure 5: system lifetime under the naive mapping (every
kernel writes its operand to the crossbar) versus the "smart" mapping
TDO-CIM's kernel fusion enables (the shared operand is written once and the
others are streamed), using the paper's Eq. (1) lifetime model.

Part 2 runs the Listing 2 workload through the actual simulator with fusion
off/on and inspects the per-cell wear counters of the PCM crossbar model.

Run with:  python examples/endurance_study.py
"""

import numpy as np

from repro import CompileOptions, OffloadExecutor, compile_source
from repro.eval import figure5, figure5_simulated, format_figure5
from repro.eval.lifetime import SHARED_INPUT_GEMMS_SOURCE
from repro.system import CimSystem, SystemConfig


def run_with_fusion(enable_fusion: bool, n: int = 64):
    """Compile and execute the Listing 2 kernel pair; return (system, report)."""
    options = CompileOptions(enable_fusion=enable_fusion)
    result = compile_source(SHARED_INPUT_GEMMS_SOURCE, options=options,
                            size_hint={"N": n})
    rng = np.random.default_rng(1)
    arrays = {
        "A": rng.random((n, n), dtype=np.float32),
        "B": rng.random((n, n), dtype=np.float32),
        "E": rng.random((n, n), dtype=np.float32),
        "C": np.zeros((n, n), dtype=np.float32),
        "D": np.zeros((n, n), dtype=np.float32),
    }
    system = CimSystem(SystemConfig())
    _, report = OffloadExecutor(system).run(result.program, {"N": n}, arrays)
    return system, report


def main() -> None:
    # ------------------------------------------------------------------
    # Part 1: Figure 5 (paper-scale projection via Eq. (1)).
    # ------------------------------------------------------------------
    print(format_figure5(figure5()))
    print()

    # ------------------------------------------------------------------
    # Part 2: simulation-backed study with wear counters.
    # ------------------------------------------------------------------
    simulated = figure5_simulated(matrix_size=64)
    print("Simulation-backed check (64x64 operands):")
    print(f"  naive mapping crossbar bytes written: "
          f"{simulated.naive.crossbar_bytes_written:.0f}")
    print(f"  smart mapping crossbar bytes written: "
          f"{simulated.smart.crossbar_bytes_written:.0f}")
    print(f"  write-volume ratio (expected 2.0):    "
          f"{simulated.write_volume_ratio:.2f}")
    print()

    for label, enable_fusion in (("naive (fusion off)", False),
                                 ('"smart" (fusion on)', True)):
        system, report = run_with_fusion(enable_fusion)
        crossbar = system.crossbar
        print(f"{label}:")
        print(f"  runtime calls:         {len(report.runtime_calls)}")
        print(f"  crossbar write ops:    {report.crossbar_write_ops}")
        print(f"  crossbar cell writes:  {report.crossbar_cell_writes}")
        print(f"  max writes to one cell:{crossbar.max_cell_writes:>4d}")
        print(f"  mean writes per cell:  "
              f"{crossbar.write_counts().mean():.2f}")
        print(f"  accelerator energy:    {report.accelerator_energy_j * 1e6:.1f} uJ")
        print()

    print("The smart mapping programs the shared A operand once; with ideal")
    print("wear levelling this halves the crossbar write traffic and doubles")
    print("the projected system lifetime (Figure 5 of the paper).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compiler explorer: what does TDO-CIM do with *your* kernel?

Feeds a mixed application — an offloadable GEMV, a non-affine loop the
polyhedral analysis must reject, and a stencil the accelerator cannot
execute — through the compiler, prints every decision (what was detected,
what was offloaded and why, what stayed on the host), the generated code,
and the accelerator activity timeline of the offloaded part.

It also demonstrates the selective-offloading cost model: the same GEMV is
kept on the host once the MACs-per-crossbar-write threshold is enabled.

Run with:  python examples/custom_kernel_explorer.py
"""

import numpy as np

from repro import CompileOptions, OffloadExecutor, compile_source
from repro.ir import to_source
from repro.system import CimSystem, SystemConfig

MIXED_SOURCE = """
void mixed(int N, float A[N][N], float x[N], float y[N],
           float u[N], float v[N], int idx[N]) {
  for (int i = 0; i < N; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
  for (int i = 0; i < N; i++)
    u[i] = v[idx[i]];
  for (int i = 1; i < N - 1; i++)
    v[i] = u[i - 1] + u[i] + u[i + 1];
}
"""


def run(options: CompileOptions, label: str) -> None:
    print(f"--- {label} " + "-" * (60 - len(label)))
    result = compile_source(MIXED_SOURCE, options=options, size_hint={"N": 64})
    print(result.report.summary())
    print()


def main() -> None:
    # 1. Default flow: the GEMV is offloaded, the gather and the stencil are
    #    not (non-affine access / no matching CIM pattern).
    run(CompileOptions(), "default: offload everything the accelerator supports")

    # 2. Selective flow: the GEMV's compute intensity (1 MAC per crossbar
    #    write) is below the threshold, so it stays on the host.
    run(CompileOptions.selective(threshold=32.0),
        "selective: MACs-per-write threshold = 32")

    # 3. Pipeline-level views: detection without transformation, and the
    #    per-pass instrumentation the pass manager records.
    detect = compile_source(
        MIXED_SOURCE,
        options=CompileOptions(pipeline="detect-only"),
        size_hint={"N": 64},
    )
    print("--- detect-only pipeline " + "-" * 37)
    print(f"SCoPs: {detect.report.scop_count}, matches: "
          f"{[(m.kind, m.update_stmt) for m in detect.matches]} "
          f"(program untouched: {detect.program is detect.source_program})")
    print()

    # 4. Show the generated program and the accelerator timeline for the
    #    default flow.
    result = compile_source(MIXED_SOURCE, size_hint={"N": 64})
    print("--- pass timings " + "-" * 45)
    print(result.report.timing_summary())
    print()
    print("--- generated code " + "-" * 43)
    print(to_source(result.program))
    print()

    n = 64
    rng = np.random.default_rng(2)
    arrays = {
        "A": rng.random((n, n), dtype=np.float32),
        "x": rng.random(n, dtype=np.float32),
        "y": np.zeros(n, dtype=np.float32),
        "u": np.zeros(n, dtype=np.float32),
        "v": rng.random(n, dtype=np.float32),
        "idx": rng.integers(0, n, size=n).astype(np.int32),
    }
    system = CimSystem(SystemConfig())
    outputs, report = OffloadExecutor(system).run(result.program, {"N": n}, arrays)
    reference = arrays["A"] @ arrays["x"]
    print("--- execution " + "-" * 48)
    print(f"GEMV result max |error|: {np.abs(outputs['y'] - reference).max():.2e}")
    print(f"total energy: {report.total_energy_j * 1e6:.2f} uJ "
          f"(accelerator {report.accelerator_energy_j * 1e6:.2f} uJ, "
          f"offload overhead {report.offload_energy_j * 1e6:.2f} uJ, "
          f"host loops {report.host_estimate.energy_j * 1e6:.2f} uJ)")
    print()
    print("--- accelerator timeline (Figure 2 (d) of the paper) " + "-" * 9)
    print(system.accelerator.timeline.render(width=64))


if __name__ == "__main__":
    main()
